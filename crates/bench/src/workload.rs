//! Config-driven production workload generation and execution.
//!
//! The figure/table binaries measure one regime at a time; this module
//! generates the regime production actually serves — a zipf-skewed stream
//! of **mixed traffic** (hybrid, filtered, and pure searches interleaved
//! with inserts and deletes) against a [`SegmentedAcornIndex`] with
//! background maintenance merging behind the readers. The `workload_bench`
//! binary drives it at up to a million rows; CI drives the same code at an
//! env-scaled row count and gates on tail latency.
//!
//! The design follows the atomix workload generator (SNIPPETS.md §3): a
//! single declarative config names every axis — row count, dimension,
//! attribute schema, zipf exponent (`0` = uniform, `1.0` = skewed),
//! read/write mix, concurrency, op count — and the whole run is a pure
//! function of that config:
//!
//! 1. [`WorkloadConfig`] — parsed from a TOML subset ([`parse_toml`],
//!    emitted back by [`to_toml`]) with `ACORN_WORKLOAD_*` env overrides
//!    ([`WorkloadConfig::load`]).
//! 2. [`WorkloadPlan::generate`] — expands the config into a corpus
//!    ([`correlated_dataset`]), a pool of per-band query templates, and a
//!    fully materialized op script ([`Op`]). Everything an execution needs
//!    is decided here, which is what makes replay determinism testable.
//! 3. [`build_index`] — bulk-loads the initial corpus in
//!    `segment_rows`-sized frozen chunks (one epoch per chunk, not per
//!    row).
//! 4. [`run_mixed`] — the concurrent measurement: the caller's thread
//!    applies the write ops in script order while `concurrency` reader
//!    threads drain the search ops, each verifying its hits as it goes.
//!    Latencies bucket per op class and per selectivity band.
//! 5. [`replay`] — the same script, strictly sequential with maintenance
//!    off, folded into a digest; two same-seed replays must produce the
//!    same digest bit-for-bit.
//!
//! [`to_toml`]: WorkloadConfig::to_toml
//! [`parse_toml`]: WorkloadConfig::parse_toml
//! [`correlated_dataset`]: acorn_data::correlated_dataset

use std::time::{Duration, Instant};

use acorn_core::{
    AcornParams, AcornVariant, GlobalNeighbor, MergePolicy, SegmentSnapshot, SegmentedAcornIndex,
};
use acorn_data::{correlated_dataset, CorrelatedSpec, HybridDataset, Zipf};
use acorn_hnsw::{LatencySummary, Metric, SearchStats, VectorStore};
use acorn_predicate::{exact_selectivity, Predicate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Every knob of a workload run. The unit of reproducibility: a plan, and
/// therefore a whole run, is a pure function of this struct.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Rows bulk-loaded before the mixed phase starts.
    pub rows: usize,
    /// Vector dimensionality.
    pub dim: usize,
    /// Mixture clusters in the generated corpus (attribute correlation
    /// anchor; see [`CorrelatedSpec`]).
    pub clusters: usize,
    /// Cardinality of the corpus `label` column.
    pub label_cardinality: usize,
    /// Keyword vocabulary size (max 64).
    pub vocab: usize,
    /// Cluster-affinity of the attribute columns (0 = independent).
    pub affinity: f64,
    /// Ops in the mixed phase (searches + inserts + deletes).
    pub ops: usize,
    /// Zipf exponent over the query-template pool: `0` = uniform traffic,
    /// `1.0` = classic skewed web traffic.
    pub zipf_exponent: f64,
    /// Reader threads draining search ops while the writer applies writes.
    pub concurrency: usize,
    /// Percentage of ops that are hybrid searches.
    pub hybrid_pct: usize,
    /// Percentage of ops that are filtered (pre-filter closure) searches.
    pub filtered_pct: usize,
    /// Percentage of ops that are pure ANN searches.
    pub pure_pct: usize,
    /// Percentage of ops that are inserts.
    pub insert_pct: usize,
    /// Percentage of ops that are deletes (the five must sum to 100).
    pub delete_pct: usize,
    /// Selectivity targets; every band gets its own template pool share
    /// and its own latency bucket.
    pub bands: Vec<f64>,
    /// Query templates generated per band (the zipf pool size is
    /// `bands.len() * templates_per_band`).
    pub templates_per_band: usize,
    /// Neighbors requested per search.
    pub k: usize,
    /// Beam width per search.
    pub efs: usize,
    /// Bulk-load chunk size: the initial corpus becomes
    /// `ceil(rows / segment_rows)` frozen segments.
    pub segment_rows: usize,
    /// Active-segment auto-freeze threshold during the mixed phase.
    pub active_max_rows: usize,
    /// Merge-policy `min_rows`: keep this below `segment_rows` so
    /// maintenance compacts the small mixed-phase segments without ever
    /// rebuilding the bulk-loaded ones mid-run.
    pub min_rows: usize,
    /// Background maintenance interval in milliseconds; `0` disables it.
    pub maintenance_ms: u64,
    /// Seed for corpus, templates, and op script alike.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            rows: 20_000,
            dim: 32,
            clusters: 64,
            label_cardinality: 16,
            vocab: 32,
            affinity: 0.8,
            ops: 8_000,
            zipf_exponent: 1.0,
            concurrency: 2,
            hybrid_pct: 40,
            filtered_pct: 15,
            pure_pct: 15,
            insert_pct: 20,
            delete_pct: 10,
            bands: vec![0.01, 0.1, 0.5],
            templates_per_band: 64,
            k: 10,
            efs: 48,
            segment_rows: 100_000,
            active_max_rows: 2_048,
            min_rows: 8_192,
            maintenance_ms: 25,
            seed: 42,
        }
    }
}

impl WorkloadConfig {
    /// Parse the TOML subset [`to_toml`](Self::to_toml) emits: one
    /// `key = value` per line, `#` comments, numeric scalars, and one-line
    /// float arrays (`bands = [0.01, 0.1, 0.5]`). Unset keys keep their
    /// defaults; unknown keys are an error (they are always typos).
    ///
    /// Hand-rolled because the workspace takes no serde/toml dependency;
    /// round-tripping is tested (`parse_toml(c.to_toml()) == c`).
    pub fn parse_toml(text: &str) -> Result<Self, String> {
        let mut c = Self::default();
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`, got `{raw}`", ln + 1))?;
            let (key, value) = (key.trim(), value.trim());
            let bad =
                |what: &str| format!("line {}: `{key}` must be {what}, got `{value}`", ln + 1);
            let as_usize = || value.parse::<usize>().map_err(|_| bad("an integer"));
            let as_u64 = || value.parse::<u64>().map_err(|_| bad("an integer"));
            let as_f64 = || value.parse::<f64>().map_err(|_| bad("a number"));
            match key {
                "rows" => c.rows = as_usize()?,
                "dim" => c.dim = as_usize()?,
                "clusters" => c.clusters = as_usize()?,
                "label_cardinality" => c.label_cardinality = as_usize()?,
                "vocab" => c.vocab = as_usize()?,
                "affinity" => c.affinity = as_f64()?,
                "ops" => c.ops = as_usize()?,
                "zipf_exponent" => c.zipf_exponent = as_f64()?,
                "concurrency" => c.concurrency = as_usize()?,
                "hybrid_pct" => c.hybrid_pct = as_usize()?,
                "filtered_pct" => c.filtered_pct = as_usize()?,
                "pure_pct" => c.pure_pct = as_usize()?,
                "insert_pct" => c.insert_pct = as_usize()?,
                "delete_pct" => c.delete_pct = as_usize()?,
                "templates_per_band" => c.templates_per_band = as_usize()?,
                "k" => c.k = as_usize()?,
                "efs" => c.efs = as_usize()?,
                "segment_rows" => c.segment_rows = as_usize()?,
                "active_max_rows" => c.active_max_rows = as_usize()?,
                "min_rows" => c.min_rows = as_usize()?,
                "maintenance_ms" => c.maintenance_ms = as_u64()?,
                "seed" => c.seed = as_u64()?,
                "bands" => {
                    let inner = value
                        .strip_prefix('[')
                        .and_then(|v| v.strip_suffix(']'))
                        .ok_or_else(|| bad("a float array like [0.01, 0.1]"))?;
                    c.bands = inner
                        .split(',')
                        .map(|s| s.trim().parse::<f64>())
                        .collect::<Result<_, _>>()
                        .map_err(|_| bad("a float array like [0.01, 0.1]"))?;
                }
                other => return Err(format!("line {}: unknown key `{other}`", ln + 1)),
            }
        }
        Ok(c)
    }

    /// Emit the config as the TOML subset [`parse_toml`](Self::parse_toml)
    /// reads. Float `Display` round-trips exactly, so
    /// `parse_toml(c.to_toml()) == c` always.
    pub fn to_toml(&self) -> String {
        let bands = self.bands.iter().map(f64::to_string).collect::<Vec<_>>().join(", ");
        format!(
            "# acorn workload config (see docs/BENCHMARKS.md)\n\
             rows = {}\ndim = {}\nclusters = {}\nlabel_cardinality = {}\nvocab = {}\n\
             affinity = {}\nops = {}\nzipf_exponent = {}\nconcurrency = {}\n\
             hybrid_pct = {}\nfiltered_pct = {}\npure_pct = {}\ninsert_pct = {}\n\
             delete_pct = {}\nbands = [{bands}]\ntemplates_per_band = {}\nk = {}\n\
             efs = {}\nsegment_rows = {}\nactive_max_rows = {}\nmin_rows = {}\n\
             maintenance_ms = {}\nseed = {}\n",
            self.rows,
            self.dim,
            self.clusters,
            self.label_cardinality,
            self.vocab,
            self.affinity,
            self.ops,
            self.zipf_exponent,
            self.concurrency,
            self.hybrid_pct,
            self.filtered_pct,
            self.pure_pct,
            self.insert_pct,
            self.delete_pct,
            self.templates_per_band,
            self.k,
            self.efs,
            self.segment_rows,
            self.active_max_rows,
            self.min_rows,
            self.maintenance_ms,
            self.seed,
        )
    }

    /// The config a bench run should use: the file named by
    /// `ACORN_WORKLOAD_CONFIG` (defaults otherwise), then per-field
    /// `ACORN_WORKLOAD_*` env overrides — `ROWS`, `OPS`, `DIM`, `ZIPF`,
    /// `CONCURRENCY`, `SEED`, `SEGMENT_ROWS`, `MAINTENANCE_MS`. CI scales a
    /// run down by exporting `ACORN_WORKLOAD_ROWS`/`OPS` and nothing else.
    pub fn load() -> Result<Self, String> {
        let mut c = match std::env::var("ACORN_WORKLOAD_CONFIG") {
            Ok(path) => {
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                Self::parse_toml(&text)?
            }
            Err(_) => Self::default(),
        };
        fn over<T: std::str::FromStr>(key: &str, slot: &mut T) -> Result<(), String> {
            if let Ok(v) = std::env::var(key) {
                *slot = v.parse().map_err(|_| format!("{key} must parse, got `{v}`"))?;
            }
            Ok(())
        }
        over("ACORN_WORKLOAD_ROWS", &mut c.rows)?;
        over("ACORN_WORKLOAD_OPS", &mut c.ops)?;
        over("ACORN_WORKLOAD_DIM", &mut c.dim)?;
        over("ACORN_WORKLOAD_ZIPF", &mut c.zipf_exponent)?;
        over("ACORN_WORKLOAD_CONCURRENCY", &mut c.concurrency)?;
        over("ACORN_WORKLOAD_SEED", &mut c.seed)?;
        over("ACORN_WORKLOAD_SEGMENT_ROWS", &mut c.segment_rows)?;
        over("ACORN_WORKLOAD_MAINTENANCE_MS", &mut c.maintenance_ms)?;
        c.validate()?;
        Ok(c)
    }

    /// Reject configs that cannot run.
    pub fn validate(&self) -> Result<(), String> {
        let mix =
            self.hybrid_pct + self.filtered_pct + self.pure_pct + self.insert_pct + self.delete_pct;
        if mix != 100 {
            return Err(format!("op-mix percentages must sum to 100, got {mix}"));
        }
        if self.rows == 0 || self.dim == 0 || self.ops == 0 {
            return Err("rows, dim, and ops must all be positive".into());
        }
        if self.bands.is_empty()
            || self.bands.iter().any(|&b| !(0.0..=1.0).contains(&b) || b == 0.0)
        {
            return Err(format!("bands must be non-empty, each in (0, 1]: {:?}", self.bands));
        }
        if self.templates_per_band == 0 || self.concurrency == 0 {
            return Err("templates_per_band and concurrency must be positive".into());
        }
        if self.k == 0 || self.efs < self.k {
            return Err(format!(
                "need k >= 1 and efs >= k, got k = {}, efs = {}",
                self.k, self.efs
            ));
        }
        if !(self.zipf_exponent.is_finite() && self.zipf_exponent >= 0.0) {
            return Err(format!("zipf_exponent must be finite and >= 0: {}", self.zipf_exponent));
        }
        Ok(())
    }
}

/// One scripted operation. Search ops index into the plan's template pool;
/// `Insert` names the pre-generated corpus row it adds; `Delete` carries a
/// draw that execution resolves against the live set at apply time
/// (`live[pick % live.len()]`) so the script stays valid whatever the
/// interleaving did to the set's size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Hybrid (predicate-aware traversal) search of a template.
    Hybrid {
        /// Index into [`WorkloadPlan::templates`].
        template: usize,
    },
    /// Pre-filtered search of the same template pool.
    Filtered {
        /// Index into [`WorkloadPlan::templates`].
        template: usize,
    },
    /// Pure ANN search (predicate ignored).
    Pure {
        /// Index into [`WorkloadPlan::templates`].
        template: usize,
    },
    /// Insert corpus row `row` (rows `config.rows..` feed inserts in
    /// order, so row `config.rows + i` always receives gid
    /// `config.rows + i`).
    Insert {
        /// Row index into the plan's dataset.
        row: usize,
    },
    /// Delete a live row chosen by `pick % live.len()` at apply time.
    Delete {
        /// Raw draw resolved against the live set when applied.
        pick: u64,
    },
}

/// A reusable query: vector, predicate, the selectivity band it was
/// generated for, and its exact selectivity over the full corpus.
#[derive(Debug, Clone)]
pub struct QueryTemplate {
    /// Query vector (a corpus point plus noise).
    pub vector: Vec<f32>,
    /// Year-range predicate hitting the band's target selectivity.
    pub predicate: Predicate,
    /// The band this template belongs to (its latency bucket).
    pub band: f64,
    /// Exact selectivity of `predicate` over the whole corpus.
    pub selectivity: f64,
}

/// A fully materialized run: corpus, template pool, op script. Generation
/// decides everything random up front so concurrent execution and
/// sequential replay observe the same script.
#[derive(Debug)]
pub struct WorkloadPlan {
    /// The config this plan was generated from.
    pub config: WorkloadConfig,
    /// Corpus over `config.rows + inserts` rows: the attribute store must
    /// cover every gid the script will ever assign (hybrid search asserts
    /// it).
    pub dataset: HybridDataset,
    /// Template pool, band-interleaved so the zipf head spans all bands.
    pub templates: Vec<QueryTemplate>,
    /// The op script, applied in order by [`replay`] and split
    /// writer/readers by [`run_mixed`].
    pub ops: Vec<Op>,
    /// Insert ops in the script (`dataset.len() == config.rows + inserts`).
    pub inserts: usize,
}

impl WorkloadPlan {
    /// Expand `config` into corpus + templates + op script.
    ///
    /// Two passes: op classes are sampled first so the corpus can be sized
    /// to `rows + inserts` (every future gid gets its attribute row), then
    /// templates and the script are drawn from the same seeded stream.
    pub fn generate(config: &WorkloadConfig) -> Result<Self, String> {
        config.validate()?;
        let mut rng = StdRng::seed_from_u64(config.seed);

        // Pass 1: op classes. 0..4 = hybrid/filtered/pure/insert/delete.
        let cuts = [
            config.hybrid_pct,
            config.hybrid_pct + config.filtered_pct,
            config.hybrid_pct + config.filtered_pct + config.pure_pct,
            config.hybrid_pct + config.filtered_pct + config.pure_pct + config.insert_pct,
        ];
        let classes: Vec<u8> = (0..config.ops)
            .map(|_| {
                let r = rng.gen_range(0..100usize);
                cuts.iter().position(|&c| r < c).unwrap_or(4) as u8
            })
            .collect();
        let inserts = classes.iter().filter(|&&c| c == 3).count();

        // Pass 2: corpus sized for every gid the script will assign.
        let dataset = correlated_dataset(&CorrelatedSpec {
            n: config.rows + inserts,
            dim: config.dim,
            clusters: config.clusters,
            label_cardinality: config.label_cardinality,
            vocab: config.vocab,
            affinity: config.affinity,
            seed: config.seed,
            ..Default::default()
        });

        // Per-band templates: year windows sized to the target selectivity
        // (the date_range workload recipe), query vectors near corpus
        // points so searches traverse dense regions.
        let field = dataset.attrs.field("year").expect("correlated corpus has a year column");
        let mut years: Vec<i64> = dataset.attrs.ints(field).to_vec();
        years.sort_unstable();
        let mut by_band: Vec<Vec<QueryTemplate>> = Vec::with_capacity(config.bands.len());
        for &band in &config.bands {
            let mut pool = Vec::with_capacity(config.templates_per_band);
            let window = ((years.len() as f64 * band) as usize).clamp(1, years.len());
            for _ in 0..config.templates_per_band {
                let start = rng.gen_range(0..=years.len() - window);
                let predicate =
                    Predicate::Between { field, lo: years[start], hi: years[start + window - 1] }
                        .normalize();
                let base = rng.gen_range(0..dataset.len());
                let vector: Vec<f32> = dataset
                    .vectors
                    .get(base as u32)
                    .iter()
                    .map(|&x| x + rng.gen_range(-0.1f32..0.1))
                    .collect();
                let selectivity = exact_selectivity(&dataset.attrs, &predicate);
                pool.push(QueryTemplate { vector, predicate, band, selectivity });
            }
            by_band.push(pool);
        }
        // Interleave bands so zipf rank 0, 1, 2, ... cycles across bands:
        // the hot head then skews *within* every band instead of devoting
        // all heat to whichever band came first.
        let mut templates = Vec::with_capacity(config.bands.len() * config.templates_per_band);
        for t in 0..config.templates_per_band {
            for pool in &mut by_band {
                templates.push(std::mem::replace(
                    &mut pool[t],
                    QueryTemplate {
                        vector: Vec::new(),
                        predicate: Predicate::True,
                        band: 0.0,
                        selectivity: 0.0,
                    },
                ));
            }
        }

        // Pass 3: the script. Search ops draw their template through the
        // zipf sampler; inserts consume corpus rows in order.
        let zipf = Zipf::new(templates.len(), config.zipf_exponent);
        let mut next_insert = 0usize;
        let ops: Vec<Op> = classes
            .iter()
            .map(|&class| match class {
                0 => Op::Hybrid { template: zipf.sample(&mut rng) },
                1 => Op::Filtered { template: zipf.sample(&mut rng) },
                2 => Op::Pure { template: zipf.sample(&mut rng) },
                3 => {
                    let row = config.rows + next_insert;
                    next_insert += 1;
                    Op::Insert { row }
                }
                _ => Op::Delete { pick: rng.gen_range(0..u64::MAX) },
            })
            .collect();
        Ok(Self { config: config.clone(), dataset, templates, ops, inserts })
    }
}

/// Construction parameters every workload index uses: γ = 8 keeps the
/// lowest default band (0.01 < 1/γ) on the prefilter-fallback path while
/// the others traverse, so one run exercises both regimes.
pub fn workload_params(config: &WorkloadConfig) -> AcornParams {
    AcornParams {
        m: 8,
        gamma: 8,
        m_beta: 16,
        ef_construction: 32,
        metric: Metric::L2,
        seed: config.seed,
        ..Default::default()
    }
}

/// Build the starting index: the initial `config.rows` corpus rows
/// bulk-loaded as `segment_rows`-sized frozen chunks (one epoch each).
/// Returns the index and the wall-clock load time.
pub fn build_index(plan: &WorkloadPlan) -> (SegmentedAcornIndex, Duration) {
    let c = &plan.config;
    let policy = MergePolicy {
        min_rows: c.min_rows,
        active_max_rows: c.active_max_rows,
        ..MergePolicy::default()
    };
    let mut idx = SegmentedAcornIndex::new(c.dim, workload_params(c), AcornVariant::Gamma)
        .with_policy(policy);
    let t0 = Instant::now();
    let mut loaded = 0usize;
    while loaded < c.rows {
        let chunk = (c.rows - loaded).min(c.segment_rows.max(1));
        let mut store = VectorStore::with_capacity(c.dim, chunk);
        for row in loaded..loaded + chunk {
            store.push(plan.dataset.vectors.get(row as u32));
        }
        idx.bulk_load(store);
        loaded += chunk;
    }
    (idx, t0.elapsed())
}

/// Latency digest for one op class over the mixed phase.
#[derive(Debug, Clone)]
pub struct ClassStats {
    /// `"hybrid"`, `"filtered"`, `"pure"`, `"insert"`, or `"delete"`.
    pub name: &'static str,
    /// Ops of this class executed.
    pub count: usize,
    /// Ops of this class per second of mixed-phase wall time.
    pub qps: f64,
    /// Latency percentiles (`None` when the class drew no ops).
    pub summary: Option<LatencySummary>,
}

/// Latency digest for one selectivity band (search ops only).
#[derive(Debug, Clone)]
pub struct BandStats {
    /// The band's target selectivity.
    pub band: f64,
    /// Search ops that used one of this band's templates.
    pub count: usize,
    /// Latency percentiles (`None` when the band drew no searches).
    pub summary: Option<LatencySummary>,
}

/// Everything [`run_mixed`] measured.
#[derive(Debug, Clone)]
pub struct MixedReport {
    /// Wall time of the whole mixed phase.
    pub wall: Duration,
    /// Per-op-class digests, script order: hybrid, filtered, pure, insert,
    /// delete.
    pub classes: Vec<ClassStats>,
    /// Per-band digests over the search classes.
    pub bands: Vec<BandStats>,
    /// Individual result rows verified (sorted order, liveness, predicate
    /// satisfaction).
    pub checked_hits: u64,
}

fn verify_hits(
    snap: &SegmentSnapshot,
    hits: &[GlobalNeighbor],
    predicate: Option<(&Predicate, &acorn_predicate::AttrStore)>,
) -> u64 {
    for w in hits.windows(2) {
        assert!(w[0].dist <= w[1].dist, "results must stay sorted under churn");
    }
    for h in hits {
        assert!(snap.contains(h.id), "gid {} surfaced but is dead at epoch {}", h.id, snap.epoch());
        if let Some((p, attrs)) = predicate {
            assert!(p.eval(attrs, h.id as u32), "gid {} violates its query's predicate", h.id);
        }
    }
    hits.len() as u64
}

/// Execute the plan's script concurrently: the calling thread applies
/// inserts and deletes in script order while `config.concurrency` reader
/// threads drain the search ops (round-robin split, one pinned snapshot
/// and one pooled scratch per op — the serving pattern). Readers verify
/// every hit. Maintenance is the caller's choice (start it before calling
/// to measure merge interference, leave it off for a quiet baseline).
pub fn run_mixed(plan: &WorkloadPlan, idx: &mut SegmentedAcornIndex) -> MixedReport {
    let c = &plan.config;
    let reader = idx.reader();
    let attrs = &plan.dataset.attrs;

    // Round-robin split of the search ops across reader threads.
    let search_ops: Vec<Op> = plan
        .ops
        .iter()
        .copied()
        .filter(|o| matches!(o, Op::Hybrid { .. } | Op::Filtered { .. } | Op::Pure { .. }))
        .collect();
    let mut shards: Vec<Vec<Op>> = vec![Vec::new(); c.concurrency];
    for (i, op) in search_ops.iter().enumerate() {
        shards[i % c.concurrency].push(*op);
    }

    // (class, band, latency) samples from every reader, plus writer-side
    // insert/delete latencies.
    let mut samples: Vec<(u8, f64, Duration)> = Vec::with_capacity(plan.ops.len());
    let mut checked = 0u64;
    let t0 = Instant::now();
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(shards.len());
        for shard in &shards {
            let reader = reader.clone();
            handles.push(s.spawn(move || {
                let mut scratch = reader.scratch_pool().checkout(0);
                let mut stats = SearchStats::default();
                let mut out: Vec<(u8, f64, Duration)> = Vec::with_capacity(shard.len());
                let mut checked = 0u64;
                for op in shard {
                    let snap = reader.snapshot();
                    scratch.reset_for(snap.max_segment_rows());
                    match *op {
                        Op::Hybrid { template } => {
                            let t = &plan.templates[template];
                            let q0 = Instant::now();
                            let (hits, _) = snap.hybrid_search(
                                &t.vector,
                                &t.predicate,
                                attrs,
                                c.k,
                                c.efs,
                                &mut scratch,
                            );
                            let dt = q0.elapsed();
                            checked += verify_hits(&snap, &hits, Some((&t.predicate, attrs)));
                            out.push((0, t.band, dt));
                        }
                        Op::Filtered { template } => {
                            let t = &plan.templates[template];
                            let filter = |gid: u64| t.predicate.eval(attrs, gid as u32);
                            let q0 = Instant::now();
                            let hits = snap.search_filtered(
                                &t.vector,
                                &filter,
                                c.k,
                                c.efs,
                                &mut scratch,
                                &mut stats,
                            );
                            let dt = q0.elapsed();
                            checked += verify_hits(&snap, &hits, Some((&t.predicate, attrs)));
                            out.push((1, t.band, dt));
                        }
                        Op::Pure { template } => {
                            let t = &plan.templates[template];
                            let q0 = Instant::now();
                            let hits =
                                snap.search_with(&t.vector, c.k, c.efs, &mut scratch, &mut stats);
                            let dt = q0.elapsed();
                            checked += verify_hits(&snap, &hits, None);
                            out.push((2, t.band, dt));
                        }
                        Op::Insert { .. } | Op::Delete { .. } => unreachable!("writer-only op"),
                    }
                }
                (out, checked)
            }));
        }

        // Writer: the script's inserts and deletes, in order, on this
        // thread — the single-writer discipline the index requires.
        let mut live: Vec<u64> = (0..c.rows as u64).collect();
        for op in &plan.ops {
            match *op {
                Op::Insert { row } => {
                    let q0 = Instant::now();
                    let gid = idx.insert(plan.dataset.vectors.get(row as u32));
                    samples.push((3, 0.0, q0.elapsed()));
                    debug_assert_eq!(gid as usize, row, "insert order must track corpus rows");
                    live.push(gid);
                }
                Op::Delete { pick } => {
                    if live.is_empty() {
                        continue;
                    }
                    let victim = live.swap_remove((pick % live.len() as u64) as usize);
                    let q0 = Instant::now();
                    let was_live = idx.delete(victim);
                    samples.push((4, 0.0, q0.elapsed()));
                    assert!(was_live, "scripted delete of {victim} found it already dead");
                }
                _ => {}
            }
        }
        for h in handles {
            let (out, n) = h.join().expect("reader thread panicked");
            samples.extend(out);
            checked += n;
        }
    });
    let wall = t0.elapsed();

    let class_names = ["hybrid", "filtered", "pure", "insert", "delete"];
    let classes = class_names
        .iter()
        .enumerate()
        .map(|(ci, name)| {
            let lats: Vec<Duration> =
                samples.iter().filter(|s| s.0 as usize == ci).map(|s| s.2).collect();
            ClassStats {
                name,
                count: lats.len(),
                qps: lats.len() as f64 / wall.as_secs_f64().max(1e-9),
                summary: LatencySummary::from_samples(&lats),
            }
        })
        .collect();
    let bands = c
        .bands
        .iter()
        .map(|&band| {
            let lats: Vec<Duration> =
                samples.iter().filter(|s| s.0 <= 2 && s.1 == band).map(|s| s.2).collect();
            BandStats { band, count: lats.len(), summary: LatencySummary::from_samples(&lats) }
        })
        .collect();
    MixedReport { wall, classes, bands, checked_hits: checked }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_mix(h: &mut u64, v: u64) {
    for b in v.to_le_bytes() {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

/// Apply the whole script strictly sequentially (maintenance off, one
/// thread) and fold every op's observable result — hit ids, distance bits,
/// assigned gids, delete outcomes — into an FNV-1a digest. Two replays of
/// the same plan must return the same digest: this is the determinism
/// contract the replay test pins down.
pub fn replay(plan: &WorkloadPlan) -> u64 {
    let c = &plan.config;
    let (mut idx, _) = build_index(plan);
    let reader = idx.reader();
    let attrs = &plan.dataset.attrs;
    let mut scratch = reader.scratch_pool().checkout(0);
    let mut stats = SearchStats::default();
    let mut live: Vec<u64> = (0..c.rows as u64).collect();
    let mut digest = FNV_OFFSET;
    let fold_hits = |digest: &mut u64, hits: &[GlobalNeighbor]| {
        for h in hits {
            fnv_mix(digest, h.id);
            fnv_mix(digest, u64::from(h.dist.to_bits()));
        }
    };
    for op in &plan.ops {
        let snap = reader.snapshot();
        scratch.reset_for(snap.max_segment_rows());
        match *op {
            Op::Hybrid { template } => {
                let t = &plan.templates[template];
                let (hits, _) =
                    snap.hybrid_search(&t.vector, &t.predicate, attrs, c.k, c.efs, &mut scratch);
                fold_hits(&mut digest, &hits);
            }
            Op::Filtered { template } => {
                let t = &plan.templates[template];
                let filter = |gid: u64| t.predicate.eval(attrs, gid as u32);
                let hits =
                    snap.search_filtered(&t.vector, &filter, c.k, c.efs, &mut scratch, &mut stats);
                fold_hits(&mut digest, &hits);
            }
            Op::Pure { template } => {
                let t = &plan.templates[template];
                let hits = snap.search_with(&t.vector, c.k, c.efs, &mut scratch, &mut stats);
                fold_hits(&mut digest, &hits);
            }
            Op::Insert { row } => {
                let gid = idx.insert(plan.dataset.vectors.get(row as u32));
                live.push(gid);
                fnv_mix(&mut digest, gid);
            }
            Op::Delete { pick } => {
                if live.is_empty() {
                    continue;
                }
                let victim = live.swap_remove((pick % live.len() as u64) as usize);
                let was_live = idx.delete(victim);
                fnv_mix(&mut digest, victim);
                fnv_mix(&mut digest, u64::from(was_live));
            }
        }
    }
    digest
}
