//! Shared method runners: build a [`BenchCtx`] once, then sweep any of the
//! benchmarked methods over it. Keeps the per-figure binaries thin and
//! guarantees every method is measured by the same driver, ground truth,
//! and recall definition.

use acorn_baselines::{
    FilteredVamana, IvfFlat, IvfSq8, NhqIndex, OraclePartitionIndex, PostFilterHnsw, PreFilter,
    StitchedVamana,
};
use acorn_core::engine::{BatchOutput, QueryEngine};
use acorn_core::AcornIndex;
use acorn_data::{ground_truth, HybridDataset, Workload};
use acorn_eval::sweep::{sweep_repeated, SweepPoint};
use acorn_eval::{workload_recall, Table};
use acorn_hnsw::Metric;
use acorn_predicate::{Predicate, PredicateFilter};

/// A prepared benchmark context: dataset + workload + exact ground truth.
pub struct BenchCtx {
    /// The hybrid dataset.
    pub ds: HybridDataset,
    /// The query workload.
    pub workload: Workload,
    /// Exact top-`k` passing ids per query.
    pub truth: Vec<Vec<u32>>,
    /// Recall target size.
    pub k: usize,
    /// Query-driver threads (0 = all cores).
    pub threads: usize,
}

impl BenchCtx {
    /// Compute ground truth and wrap everything up.
    pub fn new(ds: HybridDataset, workload: Workload, k: usize, threads: usize) -> Self {
        let truth = ground_truth(&ds.vectors, &ds.attrs, Metric::L2, &workload.queries, k, threads);
        Self { ds, workload, truth, k, threads }
    }

    /// Number of queries.
    pub fn nq(&self) -> usize {
        self.workload.queries.len()
    }
}

/// Extract the label of an `Equals` predicate (the LCPS benchmarks' key).
///
/// # Panics
/// Panics on any other predicate shape.
pub fn equals_label(p: &Predicate) -> i64 {
    match p {
        Predicate::Equals { value, .. } => *value,
        other => panic!("expected an Equals predicate, got {other:?}"),
    }
}

/// Turn one engine batch into a sweep point, scoring recall against the
/// context's ground truth.
fn batch_point(ctx: &BenchCtx, param: usize, out: &BatchOutput) -> SweepPoint {
    let ids: Vec<Vec<u32>> = out.results.iter().map(|r| r.iter().map(|n| n.id).collect()).collect();
    let denom = ctx.nq().max(1) as f64;
    SweepPoint {
        param,
        recall: workload_recall(&ids, &ctx.truth, ctx.k),
        qps: out.qps,
        avg_ndis: out.stats.ndis as f64 / denom,
        avg_npred: out.stats.npred as f64 / denom,
        avg_npred_cached: out.stats.npred_cached as f64 / denom,
    }
}

/// Sweep ACORN (γ or 1) with its full cost-model routing (§5.2 fallback),
/// served through the [`QueryEngine`] batch layer.
pub fn sweep_acorn(idx: &AcornIndex, ctx: &BenchCtx, params: &[usize]) -> Vec<SweepPoint> {
    let engine =
        QueryEngine::new(idx).with_threads(ctx.threads).with_repeats(crate::bench_repeats());
    let batch: Vec<(&[f32], &Predicate)> =
        ctx.workload.queries.iter().map(|q| (q.vector.as_slice(), &q.predicate)).collect();
    params
        .iter()
        .map(|&efs| {
            let out = engine.hybrid_search_batch(&batch, &ctx.ds.attrs, ctx.k, efs);
            batch_point(ctx, efs, &out)
        })
        .collect()
}

/// Sweep ACORN without the pre-filter fallback (pure predicate-subgraph
/// traversal; used by ablations that isolate the graph's behaviour).
pub fn sweep_acorn_graph_only(
    idx: &AcornIndex,
    ctx: &BenchCtx,
    params: &[usize],
) -> Vec<SweepPoint> {
    sweep_repeated(
        params,
        &ctx.truth,
        ctx.k,
        ctx.threads,
        crate::bench_repeats(),
        |i, efs, scratch| {
            let q = &ctx.workload.queries[i];
            let filter = PredicateFilter::new(&ctx.ds.attrs, &q.predicate);
            let mut stats = acorn_hnsw::SearchStats::default();
            let out = idx.search_filtered(&q.vector, &filter, ctx.k, efs, scratch, &mut stats);
            (out.iter().map(|n| n.id).collect(), stats)
        },
    )
}

/// Sweep HNSW post-filtering (`K/s` over-search, §7.2). Uses each query's
/// exact selectivity, favoring the baseline.
pub fn sweep_postfilter(pf: &PostFilterHnsw, ctx: &BenchCtx, params: &[usize]) -> Vec<SweepPoint> {
    sweep_repeated(
        params,
        &ctx.truth,
        ctx.k,
        ctx.threads,
        crate::bench_repeats(),
        |i, efs, scratch| {
            let q = &ctx.workload.queries[i];
            let filter = PredicateFilter::new(&ctx.ds.attrs, &q.predicate);
            let mut stats = acorn_hnsw::SearchStats::default();
            let out = pf.search(&q.vector, &filter, ctx.k, efs, q.selectivity, scratch, &mut stats);
            (out.iter().map(|n| n.id).collect(), stats)
        },
    )
}

/// Pre-filtering has no quality knob: one point at perfect recall.
pub fn sweep_prefilter(ctx: &BenchCtx) -> Vec<SweepPoint> {
    let pf = PreFilter::new(ctx.ds.vectors.clone(), Metric::L2);
    sweep_repeated(
        &[0],
        &ctx.truth,
        ctx.k,
        ctx.threads,
        crate::bench_repeats(),
        |i, _p, _scratch| {
            let q = &ctx.workload.queries[i];
            let filter = PredicateFilter::new(&ctx.ds.attrs, &q.predicate);
            let mut stats = acorn_hnsw::SearchStats::default();
            let out = pf.search(&q.vector, &filter, ctx.k, &mut stats);
            (out.iter().map(|n| n.id).collect(), stats)
        },
    )
}

/// Sweep the oracle partition index (requires `Equals` predicates).
pub fn sweep_oracle(
    oracle: &OraclePartitionIndex,
    ctx: &BenchCtx,
    params: &[usize],
) -> Vec<SweepPoint> {
    sweep_repeated(
        params,
        &ctx.truth,
        ctx.k,
        ctx.threads,
        crate::bench_repeats(),
        |i, efs, scratch| {
            let q = &ctx.workload.queries[i];
            let label = equals_label(&q.predicate);
            let mut stats = acorn_hnsw::SearchStats::default();
            let out = oracle.search(label, &q.vector, ctx.k, efs, scratch, &mut stats);
            (out.iter().map(|n| n.id).collect(), stats)
        },
    )
}

/// Sweep FilteredVamana (param = search beam `L`).
pub fn sweep_filtered_vamana(
    fv: &FilteredVamana,
    ctx: &BenchCtx,
    params: &[usize],
) -> Vec<SweepPoint> {
    sweep_repeated(
        params,
        &ctx.truth,
        ctx.k,
        ctx.threads,
        crate::bench_repeats(),
        |i, l, scratch| {
            let q = &ctx.workload.queries[i];
            let label = equals_label(&q.predicate);
            let mut stats = acorn_hnsw::SearchStats::default();
            let out = fv.search_with(&q.vector, label, ctx.k, l, scratch, &mut stats);
            (out.iter().map(|n| n.id).collect(), stats)
        },
    )
}

/// Sweep StitchedVamana (param = search beam `L`).
pub fn sweep_stitched(sv: &StitchedVamana, ctx: &BenchCtx, params: &[usize]) -> Vec<SweepPoint> {
    sweep_repeated(
        params,
        &ctx.truth,
        ctx.k,
        ctx.threads,
        crate::bench_repeats(),
        |i, l, scratch| {
            let q = &ctx.workload.queries[i];
            let label = equals_label(&q.predicate);
            let mut stats = acorn_hnsw::SearchStats::default();
            let out = sv.search_with(&q.vector, label, ctx.k, l, scratch, &mut stats);
            (out.iter().map(|n| n.id).collect(), stats)
        },
    )
}

/// Sweep NHQ fusion search (param = beam `ef`).
pub fn sweep_nhq(nhq: &NhqIndex, ctx: &BenchCtx, params: &[usize]) -> Vec<SweepPoint> {
    sweep_repeated(
        params,
        &ctx.truth,
        ctx.k,
        ctx.threads,
        crate::bench_repeats(),
        |i, ef, scratch| {
            let q = &ctx.workload.queries[i];
            let label = equals_label(&q.predicate);
            let mut stats = acorn_hnsw::SearchStats::default();
            let out = nhq.search_with(&q.vector, label, ctx.k, ef, scratch, &mut stats);
            (out.iter().map(|n| n.id).collect(), stats)
        },
    )
}

/// Sweep IVF-Flat (param = `nprobe`).
pub fn sweep_ivf(ivf: &IvfFlat, ctx: &BenchCtx, params: &[usize]) -> Vec<SweepPoint> {
    sweep_repeated(
        params,
        &ctx.truth,
        ctx.k,
        ctx.threads,
        crate::bench_repeats(),
        |i, nprobe, _scratch| {
            let q = &ctx.workload.queries[i];
            let filter = PredicateFilter::new(&ctx.ds.attrs, &q.predicate);
            let mut stats = acorn_hnsw::SearchStats::default();
            let out = ivf.search(&q.vector, &filter, ctx.k, nprobe, &mut stats);
            (out.iter().map(|n| n.id).collect(), stats)
        },
    )
}

/// Sweep IVF-SQ8 (param = `nprobe`).
pub fn sweep_ivf_sq8(ivf: &IvfSq8, ctx: &BenchCtx, params: &[usize]) -> Vec<SweepPoint> {
    sweep_repeated(
        params,
        &ctx.truth,
        ctx.k,
        ctx.threads,
        crate::bench_repeats(),
        |i, nprobe, _scratch| {
            let q = &ctx.workload.queries[i];
            let filter = PredicateFilter::new(&ctx.ds.attrs, &q.predicate);
            let mut stats = acorn_hnsw::SearchStats::default();
            let out = ivf.search(&q.vector, &filter, ctx.k, nprobe, &mut stats);
            (out.iter().map(|n| n.id).collect(), stats)
        },
    )
}

/// Append a method's sweep to a results table.
pub fn table_rows(table: &mut Table, method: &str, points: &[SweepPoint]) {
    for p in points {
        table.row(vec![
            method.to_string(),
            p.param.to_string(),
            format!("{:.4}", p.recall),
            format!("{:.0}", p.qps),
            format!("{:.1}", p.avg_ndis),
            format!("{:.1}", p.avg_npred),
            format!("{:.2}", p.pred_hit_rate()),
        ]);
    }
}

/// The standard sweep-table header.
pub fn sweep_table(title: &str) -> Table {
    Table::new(title, &["method", "param", "recall@10", "QPS", "avg_ndis", "avg_npred", "pred_hit"])
}

#[cfg(test)]
mod tests {
    use super::*;
    use acorn_core::{AcornParams, AcornVariant};
    use acorn_data::datasets::sift_like;
    use acorn_data::workloads::equality_workload;

    #[test]
    fn acorn_sweep_end_to_end_smoke() {
        let ds = sift_like(1500, 1);
        let w = equality_workload(&ds, 8, 2);
        let ctx = BenchCtx::new(ds, w, 10, 2);
        let idx = AcornIndex::build(
            ctx.ds.vectors.clone(),
            AcornParams { m: 8, gamma: 6, m_beta: 16, ef_construction: 32, ..Default::default() },
            AcornVariant::Gamma,
        );
        let pts = sweep_acorn(&idx, &ctx, &[16, 64]);
        assert_eq!(pts.len(), 2);
        assert!(pts[1].recall >= pts[0].recall - 0.1, "recall should not collapse with ef");
        assert!(pts[1].recall > 0.5);
    }

    #[test]
    fn prefilter_sweep_is_exact() {
        let ds = sift_like(800, 3);
        let w = equality_workload(&ds, 5, 4);
        let ctx = BenchCtx::new(ds, w, 10, 2);
        let pts = sweep_prefilter(&ctx);
        assert_eq!(pts.len(), 1);
        assert!((pts[0].recall - 1.0).abs() < 1e-9, "pre-filtering must be exact");
    }

    #[test]
    fn equals_label_extracts() {
        let p = Predicate::Equals { field: 0, value: 9 };
        assert_eq!(equals_label(&p), 9);
    }
}
