//! # acorn-bench
//!
//! The experiment harness: one binary per table and figure of the ACORN
//! paper's evaluation (§7), plus Criterion micro-benchmarks of the hot
//! kernels. See DESIGN.md §3 for the experiment index and EXPERIMENTS.md
//! for recorded results.
//!
//! All experiments run on synthetic stand-in datasets (DESIGN.md §4) scaled
//! by environment variables so the full suite completes on one machine:
//!
//! * `ACORN_BENCH_N` — base dataset size multiplier context (default sizes
//!   are per-binary; this overrides them).
//! * `ACORN_BENCH_NQ` — queries per workload (default 50).
//! * `ACORN_BENCH_THREADS` — query-driver threads (default: all cores).
//!
//! Output: aligned tables on stdout and CSV files under `results/`.

pub mod methods;
pub mod workload;

use std::path::PathBuf;

/// Dataset size for a binary, overridable via `ACORN_BENCH_N`.
pub fn bench_n(default: usize) -> usize {
    std::env::var("ACORN_BENCH_N").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Queries per workload, overridable via `ACORN_BENCH_NQ`.
pub fn bench_nq(default: usize) -> usize {
    std::env::var("ACORN_BENCH_NQ").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Query-driver thread count (0 = all cores), via `ACORN_BENCH_THREADS`.
pub fn bench_threads() -> usize {
    std::env::var("ACORN_BENCH_THREADS").ok().and_then(|v| v.parse().ok()).unwrap_or(0)
}

/// Per-query repetitions for QPS measurement (keeps wall time well above
/// thread start-up), via `ACORN_BENCH_REPEATS` (default 5).
pub fn bench_repeats() -> usize {
    std::env::var("ACORN_BENCH_REPEATS").ok().and_then(|v| v.parse().ok()).unwrap_or(5)
}

/// The beam-width sweep used for recall-QPS curves (the paper sweeps efs
/// 10..800; scaled-down datasets saturate recall earlier).
pub fn efs_sweep() -> Vec<usize> {
    vec![10, 20, 40, 80, 160, 320]
}

/// Directory for CSV outputs (`results/`), created on demand.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir).expect("cannot create results dir");
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_overrides_parse() {
        // Note: we do not mutate the environment in tests (process-global);
        // just exercise the default paths.
        assert_eq!(bench_n(123), 123);
        assert_eq!(bench_nq(45), 45);
        assert!(efs_sweep().windows(2).all(|w| w[0] < w[1]));
    }
}
