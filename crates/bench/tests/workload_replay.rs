//! Determinism and config-round-trip tests for the workload harness: the
//! whole run — corpus, templates, op script, and every op's observable
//! result — must be a pure function of the config.

use acorn_bench::workload::{replay, Op, WorkloadConfig, WorkloadPlan};

/// A config small enough that a full sequential replay takes well under a
/// second in debug builds.
fn small_config() -> WorkloadConfig {
    WorkloadConfig {
        rows: 600,
        dim: 8,
        clusters: 8,
        ops: 400,
        templates_per_band: 16,
        segment_rows: 256,
        active_max_rows: 64,
        min_rows: 128,
        maintenance_ms: 0,
        concurrency: 1,
        ..WorkloadConfig::default()
    }
}

#[test]
fn toml_round_trips_exactly() {
    let mut c = small_config();
    c.zipf_exponent = 0.73;
    c.bands = vec![0.015, 0.25];
    c.seed = 987;
    let parsed = WorkloadConfig::parse_toml(&c.to_toml()).expect("own emission must parse");
    assert_eq!(parsed, c, "parse(to_toml(c)) must round-trip every field");
}

#[test]
fn toml_rejects_unknown_keys_and_bad_values() {
    assert!(WorkloadConfig::parse_toml("rowz = 5").is_err(), "typo'd key must not pass silently");
    assert!(WorkloadConfig::parse_toml("rows = many").is_err());
    assert!(WorkloadConfig::parse_toml("bands = 0.5").is_err(), "bands must be an array");
    let c = WorkloadConfig::parse_toml("# just a comment\n\nrows = 777\n").unwrap();
    assert_eq!(c.rows, 777);
    assert_eq!(c.dim, WorkloadConfig::default().dim, "unset keys keep defaults");
}

#[test]
fn validate_rejects_broken_mixes() {
    let mut c = small_config();
    c.hybrid_pct = 50; // mix no longer sums to 100
    assert!(c.validate().is_err());
    let mut c = small_config();
    c.bands = vec![0.0];
    assert!(c.validate().is_err(), "a zero-selectivity band is meaningless");
    let mut c = small_config();
    c.efs = c.k - 1;
    assert!(c.validate().is_err());
}

#[test]
fn plan_generation_is_deterministic() {
    let c = small_config();
    let (a, b) = (WorkloadPlan::generate(&c).unwrap(), WorkloadPlan::generate(&c).unwrap());
    assert_eq!(a.ops, b.ops, "same config must script the same ops");
    assert_eq!(a.inserts, b.inserts);
    assert_eq!(a.templates.len(), b.templates.len());
    for (ta, tb) in a.templates.iter().zip(&b.templates) {
        assert_eq!(ta.vector, tb.vector);
        assert_eq!(format!("{:?}", ta.predicate), format!("{:?}", tb.predicate));
        assert_eq!(ta.selectivity, tb.selectivity);
    }
    let mut c2 = c;
    c2.seed = 99;
    let other = WorkloadPlan::generate(&c2).unwrap();
    assert_ne!(a.ops, other.ops, "different seeds must script different runs");
}

#[test]
fn plan_covers_every_future_gid() {
    let plan = WorkloadPlan::generate(&small_config()).unwrap();
    // Hybrid search asserts attrs cover every assigned gid; the corpus must
    // therefore be sized rows + inserts, with insert ops consuming rows in
    // order so gid == corpus row throughout.
    assert_eq!(plan.dataset.len(), plan.config.rows + plan.inserts);
    let insert_rows: Vec<usize> = plan
        .ops
        .iter()
        .filter_map(|op| match op {
            Op::Insert { row } => Some(*row),
            _ => None,
        })
        .collect();
    let expect: Vec<usize> = (plan.config.rows..plan.config.rows + plan.inserts).collect();
    assert_eq!(insert_rows, expect, "insert ops must consume corpus rows in order");
}

#[test]
fn zipf_skew_concentrates_template_traffic() {
    let mut c = small_config();
    c.ops = 4000;
    c.zipf_exponent = 1.2;
    let plan = WorkloadPlan::generate(&c).unwrap();
    let mut counts = vec![0usize; plan.templates.len()];
    for op in &plan.ops {
        if let Op::Hybrid { template } | Op::Filtered { template } | Op::Pure { template } = op {
            counts[*template] += 1;
        }
    }
    let total: usize = counts.iter().sum();
    let head: usize = counts[..plan.templates.len() / 10].iter().sum();
    assert!(
        head as f64 > 0.4 * total as f64,
        "zipf 1.2: hottest decile must dominate, got {head}/{total}"
    );

    c.zipf_exponent = 0.0;
    let plan = WorkloadPlan::generate(&c).unwrap();
    let mut counts = vec![0usize; plan.templates.len()];
    for op in &plan.ops {
        if let Op::Hybrid { template } | Op::Filtered { template } | Op::Pure { template } = op {
            counts[*template] += 1;
        }
    }
    let total: usize = counts.iter().sum();
    let head: usize = counts[..plan.templates.len() / 10].iter().sum();
    assert!(
        (head as f64) < 0.25 * total as f64,
        "zipf 0 is uniform: the first decile must stay near 10%, got {head}/{total}"
    );
}

#[test]
fn same_seed_replays_are_identical() {
    let plan = WorkloadPlan::generate(&small_config()).unwrap();
    let (a, b) = (replay(&plan), replay(&plan));
    assert_eq!(a, b, "two same-seed sequential replays must digest identically");

    let mut c2 = small_config();
    c2.seed = 777;
    let other = replay(&WorkloadPlan::generate(&c2).unwrap());
    assert_ne!(a, other, "a different seed must produce a different run");
}
