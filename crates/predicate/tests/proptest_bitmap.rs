//! Property tests: `Bitset` must behave identically to a `Vec<bool>` model.

use acorn_predicate::Bitset;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Set(u32),
    Clear(u32),
    Negate,
}

fn ops(universe: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            4 => (0..universe as u32).prop_map(Op::Set),
            2 => (0..universe as u32).prop_map(Op::Clear),
            1 => Just(Op::Negate),
        ],
        0..40,
    )
}

proptest! {
    #[test]
    fn bitset_matches_vec_bool_model(universe in 1usize..300, ops in ops(299)) {
        let mut bits = Bitset::new(universe);
        let mut model = vec![false; universe];
        for op in ops {
            match op {
                Op::Set(i) => {
                    let i = i as usize % universe;
                    bits.set(i as u32);
                    model[i] = true;
                }
                Op::Clear(i) => {
                    let i = i as usize % universe;
                    bits.clear(i as u32);
                    model[i] = false;
                }
                Op::Negate => {
                    bits.negate();
                    for b in &mut model {
                        *b = !*b;
                    }
                }
            }
        }
        prop_assert_eq!(bits.count(), model.iter().filter(|&&b| b).count());
        let ones: Vec<u32> = model
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| i as u32)
            .collect();
        prop_assert_eq!(bits.to_ids(), ones);
    }

    #[test]
    fn and_or_match_model(universe in 1usize..200, a in prop::collection::vec(any::<bool>(), 200), b in prop::collection::vec(any::<bool>(), 200)) {
        let ids_a: Vec<u32> = (0..universe).filter(|&i| a[i]).map(|i| i as u32).collect();
        let ids_b: Vec<u32> = (0..universe).filter(|&i| b[i]).map(|i| i as u32).collect();
        let ba = Bitset::from_ids(universe, ids_a.iter().copied());
        let bb = Bitset::from_ids(universe, ids_b.iter().copied());

        let mut and = ba.clone();
        and.and_with(&bb);
        let want_and: Vec<u32> = (0..universe).filter(|&i| a[i] && b[i]).map(|i| i as u32).collect();
        prop_assert_eq!(and.to_ids(), want_and);

        let mut or = ba.clone();
        or.or_with(&bb);
        let want_or: Vec<u32> = (0..universe).filter(|&i| a[i] || b[i]).map(|i| i as u32).collect();
        prop_assert_eq!(or.to_ids(), want_or);
    }
}
