//! Property tests: the compiled predicate engine must be bit-identical to
//! interpreted AST evaluation over random predicates × random stores.
//!
//! Random ASTs are built with a seeded recursive generator (the vendored
//! proptest shim has no `prop_recursive`), covering all three column kinds,
//! empty `In` lists, unsorted `In` lists (canonicalized through
//! `in_values`), nested `Not`, empty/wide `And`/`Or`, regex clauses, and
//! block-boundary row counts (63/64/65).

use acorn_predicate::{
    estimate_selectivity, estimate_selectivity_compiled, AttrStore, Bitset, CompiledPredicate,
    Predicate, Regex,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const WORDS: [&str; 8] = ["red", "dog", "cat", "photo", "a9", "blue fish", "", "riverbed"];
const PATTERNS: [&str; 6] = ["^red", "dog", "(cat|fish)", "[0-9]", "photo .*d", "e$"];

fn random_store(n: usize, rng: &mut StdRng) -> AttrStore {
    AttrStore::builder()
        .add_int("x", (0..n).map(|_| rng.gen_range(-8i64..8)).collect())
        .add_keywords("kw", (0..n).map(|_| rng.gen_range(0u64..16)).collect())
        .add_text("cap", (0..n).map(|_| WORDS[rng.gen_range(0..WORDS.len())].to_string()).collect())
        .build()
}

fn random_pred(depth: usize, rng: &mut StdRng) -> Predicate {
    // Field ids match `random_store`'s build order: 0 = int, 1 = kw, 2 = cap.
    let leaf = |rng: &mut StdRng| match rng.gen_range(0..7) {
        0 => Predicate::True,
        1 => Predicate::Equals { field: 0, value: rng.gen_range(-8..8) },
        2 => {
            // 0–4 unsorted, possibly duplicated values (canonicalized by
            // in_values); sometimes a wide span to exercise InSorted.
            let len = rng.gen_range(0..5usize);
            let mut values: Vec<i64> = (0..len).map(|_| rng.gen_range(-8..8)).collect();
            if rng.gen_bool(0.3) {
                values.push(rng.gen_range(-1_000_000i64..1_000_000));
            }
            Predicate::in_values(0, values)
        }
        3 => {
            let (a, b) = (rng.gen_range(-9i64..9), rng.gen_range(-9i64..9));
            // lo > hi sometimes: an empty range must also agree.
            Predicate::Between { field: 0, lo: a, hi: b }
        }
        4 => Predicate::ContainsAny { field: 1, mask: rng.gen_range(0..16) },
        5 => Predicate::ContainsAll { field: 1, mask: rng.gen_range(0..16) },
        _ => Predicate::RegexMatch {
            field: 2,
            regex: Regex::new(PATTERNS[rng.gen_range(0..PATTERNS.len())]).unwrap(),
        },
    };
    if depth == 0 {
        return leaf(rng);
    }
    match rng.gen_range(0..6) {
        0..=2 => leaf(rng),
        3 => Predicate::Not(Box::new(random_pred(depth - 1, rng))),
        4 => Predicate::And(
            (0..rng.gen_range(0..4usize)).map(|_| random_pred(depth - 1, rng)).collect(),
        ),
        _ => Predicate::Or(
            (0..rng.gen_range(0..4usize)).map(|_| random_pred(depth - 1, rng)).collect(),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn compiled_equals_interpreted_everywhere(
        seed in 0u64..u64::MAX,
        n in prop::sample::select(vec![0usize, 1, 2, 63, 64, 65, 127, 128, 129, 200]),
        depth in 0usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let store = random_store(n, &mut rng);
        let pred = random_pred(depth, &mut rng);
        let compiled = CompiledPredicate::compile(&pred);
        let normalized = pred.clone().normalize();

        // Scalar: compiled and normalized agree with the interpreted oracle
        // on every row.
        for id in 0..n as u32 {
            let want = pred.eval(&store, id);
            prop_assert_eq!(compiled.eval(&store, id), want, "compiled row {}", id);
            prop_assert_eq!(normalized.eval(&store, id), want, "normalized row {}", id);
        }

        // Block materialization: identical to the per-row oracle bitset,
        // including tail-block masking.
        let oracle = Bitset::from_ids(n, (0..n as u32).filter(|&i| pred.eval(&store, i)));
        prop_assert_eq!(&compiled.to_bitset(&store), &oracle);
        prop_assert_eq!(&pred.to_bitset(&store), &oracle);
        if n % 64 != 0 && !oracle.words().is_empty() {
            let last = compiled.to_bitset(&store);
            let tail = last.words()[oracle.words().len() - 1];
            prop_assert_eq!(tail >> (n % 64), 0, "bits beyond n must be zero");
        }

        // Routing parity: the compiled sampled estimator sees the same rows
        // and must return the exact same estimate.
        let est_i = estimate_selectivity(&store, &pred, 100, seed);
        let est_c = estimate_selectivity_compiled(&store, &compiled, 100, seed);
        prop_assert_eq!(est_i, est_c);
    }

    #[test]
    fn normalize_is_idempotent(seed in 0u64..u64::MAX, depth in 0usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let store = random_store(80, &mut rng);
        let pred = random_pred(depth, &mut rng);
        let once = pred.clone().normalize();
        let twice = once.clone().normalize();
        for id in 0..80u32 {
            prop_assert_eq!(once.eval(&store, id), twice.eval(&store, id), "row {}", id);
        }
        // A normalized tree lowers to the same program size as its own
        // normalization — i.e. normalize left nothing foldable behind.
        prop_assert_eq!(
            CompiledPredicate::compile(&once).num_ops(),
            CompiledPredicate::compile(&twice).num_ops()
        );
    }
}
