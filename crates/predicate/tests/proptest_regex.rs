//! Property tests: the Pike-VM regex engine must agree with the independent
//! backtracking oracle on randomly generated patterns and texts.

use acorn_predicate::regex::{naive, parser, Regex};
use proptest::prelude::*;

/// Strategy producing syntactically valid patterns over a small alphabet.
fn pattern() -> impl Strategy<Value = String> {
    let atom = prop_oneof![
        4 => prop::sample::select(vec!["a", "b", "c", "0", "1"]).prop_map(str::to_string),
        1 => Just(".".to_string()),
        1 => Just("[ab]".to_string()),
        1 => Just("[^a]".to_string()),
        1 => Just("[0-9]".to_string()),
        1 => Just(r"\d".to_string()),
        1 => Just(r"\w".to_string()),
    ];
    let repeated = (
        atom,
        prop_oneof![
            5 => Just(""),
            1 => Just("*"),
            1 => Just("+"),
            1 => Just("?"),
        ],
    )
        .prop_map(|(a, q)| format!("{a}{q}"));
    let concat = prop::collection::vec(repeated, 1..5).prop_map(|v| v.concat());
    let alt = prop::collection::vec(concat, 1..3).prop_map(|v| v.join("|"));
    // Optionally anchor and optionally group-star the whole thing.
    (alt, any::<bool>(), any::<bool>()).prop_map(|(core, anchor_start, anchor_end)| {
        let mut s = String::new();
        if anchor_start {
            s.push('^');
        }
        s.push_str(&core);
        if anchor_end {
            s.push('$');
        }
        s
    })
}

fn text() -> impl Strategy<Value = String> {
    prop::collection::vec(prop::sample::select(vec!['a', 'b', 'c', '0', '1', ' ']), 0..12)
        .prop_map(|v| v.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn nfa_agrees_with_backtracking_oracle(pat in pattern(), txt in text()) {
        let ast = parser::parse(&pat).expect("generated pattern must parse");
        let re = Regex::new(&pat).expect("generated pattern must compile");
        let got = re.is_match(&txt);
        let want = naive::is_match(&ast, &txt);
        prop_assert_eq!(got, want, "pattern {:?} text {:?}", pat, txt);
    }

    #[test]
    fn literal_patterns_equal_substring_search(txt in text(), needle in text()) {
        // Patterns with no metacharacters are plain substring search.
        if needle.chars().all(|c| c.is_alphanumeric() || c == ' ') {
            let re = Regex::new(&needle).unwrap();
            prop_assert_eq!(re.is_match(&txt), txt.contains(&needle));
        }
    }

    #[test]
    fn match_is_invariant_under_text_extension(pat in pattern(), txt in text()) {
        // Unanchored-or-start-anchored matches survive appending text, unless
        // the pattern contains an end anchor.
        if !pat.contains('$') {
            let re = Regex::new(&pat).unwrap();
            if re.is_match(&txt) {
                let extended = format!("{txt}zzz");
                prop_assert!(re.is_match(&extended), "pattern {:?}", pat);
            }
        }
    }
}
