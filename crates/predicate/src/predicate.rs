//! The predicate AST and its evaluator.
//!
//! Covers the operator set exercised by the ACORN paper's four workloads
//! (Table 2): `equals(y)` on integers, `contains(y1 ∨ y2 ∨ ...)` on keyword
//! lists, `between(y1, y2)` on dates/integers, and `regex-match(y)` on text,
//! plus boolean combinators so workloads like TripClick's
//! `contains(...) & between(...)` compose naturally.

use crate::attrs::AttrStore;
use crate::bitmap::Bitset;
use crate::regex::Regex;
use crate::FieldId;

/// A predicate over one dataset row.
#[derive(Debug, Clone)]
pub enum Predicate {
    /// Always true (the pure-ANN query).
    True,
    /// `field == value` on an int column.
    Equals {
        /// Target int column.
        field: FieldId,
        /// Value to match.
        value: i64,
    },
    /// `field ∈ values` on an int column (small-set membership).
    In {
        /// Target int column.
        field: FieldId,
        /// Accepted values, **sorted ascending and deduplicated** — the
        /// evaluator binary-searches this list. Construct through
        /// [`Predicate::in_values`] (or run [`Predicate::normalize`]) to
        /// maintain the invariant.
        values: Vec<i64>,
    },
    /// `lo <= field <= hi` (inclusive) on an int column.
    Between {
        /// Target int column.
        field: FieldId,
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
    /// Keyword-list intersection: row passes if it has *any* of the masked
    /// terms (the paper's `contains(y1 ∨ y2 ∨ ...)`).
    ContainsAny {
        /// Target keywords column.
        field: FieldId,
        /// Bitmask of accepted terms.
        mask: u64,
    },
    /// Keyword-list superset: row passes if it has *all* masked terms.
    ContainsAll {
        /// Target keywords column.
        field: FieldId,
        /// Bitmask of required terms.
        mask: u64,
    },
    /// Regex match over a text column (unanchored search semantics).
    RegexMatch {
        /// Target text column.
        field: FieldId,
        /// Compiled pattern.
        regex: Regex,
    },
    /// Conjunction.
    And(Vec<Predicate>),
    /// Disjunction.
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

/// Relative per-row evaluation cost weights, shared by
/// [`Predicate::normalize`]'s clause reordering and the compiled engine's
/// cost classes. Regex dominates everything else by orders of magnitude, so
/// its weight keeps any regex clause sorted after every structured clause.
pub(crate) mod cost {
    /// Constant-time column compare (`Equals`, `Between`, `Contains*`).
    pub const LEAF: u64 = 1;
    /// Binary search over a sorted value list.
    pub const IN: u64 = 2;
    /// NFA simulation over a text row.
    pub const REGEX: u64 = 1000;
}

impl Predicate {
    /// `field ∈ values` with the [`In`](Predicate::In) sorted/deduplicated
    /// invariant established at construction, so membership checks
    /// binary-search instead of scanning `O(|values|)` per row.
    pub fn in_values(field: FieldId, mut values: Vec<i64>) -> Predicate {
        values.sort_unstable();
        values.dedup();
        Predicate::In { field, values }
    }

    /// Evaluate against row `id` of `attrs`.
    pub fn eval(&self, attrs: &AttrStore, id: u32) -> bool {
        match self {
            Predicate::True => true,
            Predicate::Equals { field, value } => attrs.int(*field, id) == *value,
            Predicate::In { field, values } => {
                // The sorted invariant is the constructor's contract (see
                // the variant docs); debug builds verify it so a
                // hand-assembled unsorted list fails fast instead of
                // silently mis-evaluating.
                debug_assert!(
                    values.windows(2).all(|w| w[0] <= w[1]),
                    "In values must be sorted (use Predicate::in_values or normalize())"
                );
                values.binary_search(&attrs.int(*field, id)).is_ok()
            }
            Predicate::Between { field, lo, hi } => {
                let v = attrs.int(*field, id);
                *lo <= v && v <= *hi
            }
            Predicate::ContainsAny { field, mask } => attrs.keywords(*field, id) & mask != 0,
            Predicate::ContainsAll { field, mask } => attrs.keywords(*field, id) & mask == *mask,
            Predicate::RegexMatch { field, regex } => regex.is_match(attrs.text(*field, id)),
            Predicate::And(ps) => ps.iter().all(|p| p.eval(attrs, id)),
            Predicate::Or(ps) => ps.iter().any(|p| p.eval(attrs, id)),
            Predicate::Not(p) => !p.eval(attrs, id),
        }
    }

    /// Materialize the predicate into a bitset over all rows (the
    /// pre-filtering strategy). Routed through the compiled engine's 64-row
    /// block kernels ([`CompiledPredicate`](crate::compiled::CompiledPredicate)),
    /// so this is a word-at-a-time columnar scan rather than `n` AST walks;
    /// results are bit-identical to evaluating [`eval`](Self::eval) per row.
    pub fn to_bitset(&self, attrs: &AttrStore) -> Bitset {
        crate::compiled::CompiledPredicate::compile(self).to_bitset(attrs)
    }

    /// The canonical constant-false predicate (`!true`); the AST has no
    /// dedicated `False` variant because no workload generates one directly.
    pub fn const_false() -> Predicate {
        Predicate::Not(Box::new(Predicate::True))
    }

    /// True if this node is the canonical constant-false form.
    fn is_const_false(&self) -> bool {
        matches!(self, Predicate::Not(p) if matches!(**p, Predicate::True))
    }

    /// Relative evaluation cost of this subtree (drives cheapest-first
    /// clause ordering in [`normalize`](Self::normalize) and the compiled
    /// engine).
    pub(crate) fn cost_weight(&self) -> u64 {
        match self {
            Predicate::True => 0,
            Predicate::Equals { .. }
            | Predicate::Between { .. }
            | Predicate::ContainsAny { .. }
            | Predicate::ContainsAll { .. } => cost::LEAF,
            Predicate::In { .. } => cost::IN,
            Predicate::RegexMatch { .. } => cost::REGEX,
            Predicate::Not(p) => cost::LEAF + p.cost_weight(),
            Predicate::And(ps) | Predicate::Or(ps) => {
                cost::LEAF + ps.iter().map(Predicate::cost_weight).sum::<u64>()
            }
        }
    }

    /// Rewrite into the canonical form the compiled engine lowers from:
    ///
    /// * nested `And`/`Or` chains are flattened into one n-ary node;
    /// * `True`, double negation, and empty combinators are constant-folded
    ///   (`And([])` → `True`, `Or([])` → `!true`, `In([])` → `!true`, a
    ///   false conjunct kills its `And`, a true disjunct wins its `Or`);
    /// * sibling clauses are stably reordered cheapest-first, hoisting
    ///   constant-time compares in front of `RegexMatch` so short-circuit
    ///   evaluation skips the expensive clause on most rows;
    /// * `In` value lists are sorted and deduplicated.
    ///
    /// Semantics are preserved exactly: for every row, the normalized
    /// predicate evaluates to the same boolean as the original (property
    /// tested). Workload generators normalize every query predicate at
    /// construction.
    pub fn normalize(self) -> Predicate {
        match self {
            Predicate::In { field, values } => {
                if values.is_empty() {
                    Predicate::const_false()
                } else {
                    Predicate::in_values(field, values)
                }
            }
            Predicate::Not(p) => {
                let p = p.normalize();
                match p {
                    // !!p = p (normalize(p) already normalized its insides).
                    Predicate::Not(inner) => *inner,
                    p => Predicate::Not(Box::new(p)),
                }
            }
            Predicate::And(ps) => {
                let mut out = Vec::with_capacity(ps.len());
                for p in ps {
                    let p = p.normalize();
                    match p {
                        Predicate::True => {}
                        p if p.is_const_false() => return Predicate::const_false(),
                        Predicate::And(children) => out.extend(children),
                        p => out.push(p),
                    }
                }
                out.sort_by_key(Predicate::cost_weight);
                match out.len() {
                    0 => Predicate::True,
                    1 => out.pop().expect("len checked"),
                    _ => Predicate::And(out),
                }
            }
            Predicate::Or(ps) => {
                let mut out = Vec::with_capacity(ps.len());
                for p in ps {
                    let p = p.normalize();
                    match p {
                        Predicate::True => return Predicate::True,
                        p if p.is_const_false() => {}
                        Predicate::Or(children) => out.extend(children),
                        p => out.push(p),
                    }
                }
                out.sort_by_key(Predicate::cost_weight);
                match out.len() {
                    0 => Predicate::const_false(),
                    1 => out.pop().expect("len checked"),
                    _ => Predicate::Or(out),
                }
            }
            leaf => leaf,
        }
    }

    /// A short human-readable rendering (used in experiment logs).
    pub fn describe(&self, attrs: &AttrStore) -> String {
        match self {
            Predicate::True => "true".into(),
            Predicate::Equals { field, value } => {
                format!("{} == {value}", attrs.field_name(*field))
            }
            Predicate::In { field, values } => {
                format!("{} in {values:?}", attrs.field_name(*field))
            }
            Predicate::Between { field, lo, hi } => {
                format!("{} in [{lo}, {hi}]", attrs.field_name(*field))
            }
            Predicate::ContainsAny { field, mask } => {
                format!("{} ∩ {mask:#x} != ∅", attrs.field_name(*field))
            }
            Predicate::ContainsAll { field, mask } => {
                format!("{} ⊇ {mask:#x}", attrs.field_name(*field))
            }
            Predicate::RegexMatch { field, regex } => {
                format!("{} ~ /{}/", attrs.field_name(*field), regex.pattern())
            }
            Predicate::And(ps) => {
                let parts: Vec<String> = ps.iter().map(|p| p.describe(attrs)).collect();
                format!("({})", parts.join(" & "))
            }
            Predicate::Or(ps) => {
                let parts: Vec<String> = ps.iter().map(|p| p.describe(attrs)).collect();
                format!("({})", parts.join(" | "))
            }
            Predicate::Not(p) => format!("!({})", p.describe(attrs)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::AttrStore;

    fn store() -> AttrStore {
        AttrStore::builder()
            .add_int("year", vec![1999, 2005, 2020, 2005])
            .add_keywords("kw", vec![0b001, 0b011, 0b100, 0b000])
            .add_text(
                "cap",
                vec!["red dog".into(), "blue cat".into(), "red cat".into(), "fish".into()],
            )
            .build()
    }

    #[test]
    fn equals_and_between() {
        let s = store();
        let year = s.field("year").unwrap();
        let eq = Predicate::Equals { field: year, value: 2005 };
        assert!(!eq.eval(&s, 0));
        assert!(eq.eval(&s, 1));
        assert!(eq.eval(&s, 3));

        let bw = Predicate::Between { field: year, lo: 2000, hi: 2010 };
        assert_eq!(bw.to_bitset(&s).to_ids(), vec![1, 3]);
    }

    #[test]
    fn in_predicate_membership() {
        let s = store();
        let year = s.field("year").unwrap();
        let p = Predicate::In { field: year, values: vec![1999, 2020] };
        assert_eq!(p.to_bitset(&s).to_ids(), vec![0, 2]);
        let empty = Predicate::In { field: year, values: vec![] };
        assert_eq!(empty.to_bitset(&s).count(), 0);
        assert_eq!(p.describe(&s), "year in [1999, 2020]");
    }

    #[test]
    fn contains_any_and_all() {
        let s = store();
        let kw = s.field("kw").unwrap();
        let any = Predicate::ContainsAny { field: kw, mask: 0b010 };
        assert_eq!(any.to_bitset(&s).to_ids(), vec![1]);
        let all = Predicate::ContainsAll { field: kw, mask: 0b011 };
        assert_eq!(all.to_bitset(&s).to_ids(), vec![1]);
        let any_of_two = Predicate::ContainsAny { field: kw, mask: 0b101 };
        assert_eq!(any_of_two.to_bitset(&s).to_ids(), vec![0, 1, 2]);
    }

    #[test]
    fn regex_match_predicate() {
        let s = store();
        let cap = s.field("cap").unwrap();
        let p = Predicate::RegexMatch { field: cap, regex: Regex::new("^red").unwrap() };
        assert_eq!(p.to_bitset(&s).to_ids(), vec![0, 2]);
    }

    #[test]
    fn boolean_combinators() {
        let s = store();
        let year = s.field("year").unwrap();
        let cap = s.field("cap").unwrap();
        let p = Predicate::And(vec![
            Predicate::Between { field: year, lo: 2000, hi: 2030 },
            Predicate::RegexMatch { field: cap, regex: Regex::new("cat").unwrap() },
        ]);
        assert_eq!(p.to_bitset(&s).to_ids(), vec![1, 2]);

        let n = Predicate::Not(Box::new(p));
        assert_eq!(n.to_bitset(&s).to_ids(), vec![0, 3]);

        let o = Predicate::Or(vec![
            Predicate::Equals { field: year, value: 1999 },
            Predicate::Equals { field: year, value: 2020 },
        ]);
        assert_eq!(o.to_bitset(&s).to_ids(), vec![0, 2]);
    }

    #[test]
    fn true_passes_everything() {
        let s = store();
        assert_eq!(Predicate::True.to_bitset(&s).count(), s.len());
    }

    #[test]
    fn describe_is_stable() {
        let s = store();
        let year = s.field("year").unwrap();
        let p = Predicate::Between { field: year, lo: 1, hi: 2 };
        assert_eq!(p.describe(&s), "year in [1, 2]");
    }
}
