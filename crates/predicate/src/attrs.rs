//! Columnar storage for the structured attributes of a hybrid dataset.
//!
//! The ACORN evaluation's datasets carry three attribute shapes: scalar
//! integers (SIFT/Paper's random label, TripClick's publication year),
//! keyword lists with small vocabularies (TripClick's 28 clinical areas,
//! LAION's 30 keywords — stored here as `u64` bitmasks so a `contains`
//! check is a single AND), and free text (LAION captions for regex
//! predicates).

/// Index of a field within an [`AttrStore`].
pub type FieldId = usize;

/// One attribute column.
#[derive(Debug, Clone)]
pub enum Column {
    /// Scalar integers (labels, years, prices-in-cents, ...).
    Int(Vec<i64>),
    /// Keyword sets over a vocabulary of at most 64 terms, as bitmasks.
    Keywords(Vec<u64>),
    /// Free-form text (regex targets).
    Str(Vec<String>),
}

impl Column {
    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Keywords(v) => v.len(),
            Column::Str(v) => v.len(),
        }
    }

    /// True if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Human-readable kind name (for error messages).
    pub fn kind(&self) -> &'static str {
        match self {
            Column::Int(_) => "int",
            Column::Keywords(_) => "keywords",
            Column::Str(_) => "str",
        }
    }

    /// Approximate heap bytes.
    pub fn memory_bytes(&self) -> usize {
        match self {
            Column::Int(v) => v.len() * 8,
            Column::Keywords(v) => v.len() * 8,
            Column::Str(v) => v.iter().map(|s| s.len() + std::mem::size_of::<String>()).sum(),
        }
    }
}

/// Immutable columnar attribute store for `n` dataset rows.
#[derive(Debug, Clone, Default)]
pub struct AttrStore {
    names: Vec<String>,
    columns: Vec<Column>,
    n: usize,
}

impl AttrStore {
    /// Start building a store.
    pub fn builder() -> AttrStoreBuilder {
        AttrStoreBuilder::default()
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the store has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of fields.
    pub fn num_fields(&self) -> usize {
        self.columns.len()
    }

    /// Resolve a field name to its id.
    pub fn field(&self, name: &str) -> Option<FieldId> {
        self.names.iter().position(|n| n == name)
    }

    /// Field name for an id.
    pub fn field_name(&self, f: FieldId) -> &str {
        &self.names[f]
    }

    /// Borrow a column.
    pub fn column(&self, f: FieldId) -> &Column {
        &self.columns[f]
    }

    /// The whole int column as a slice (block predicate kernels read columns
    /// 64 rows at a time; going through [`int`](Self::int) per row would put
    /// the kind `match` back on the hot path).
    ///
    /// # Panics
    /// Panics if the field is not an int column.
    #[inline]
    pub fn ints(&self, f: FieldId) -> &[i64] {
        match &self.columns[f] {
            Column::Int(v) => v,
            c => panic!("field {} is {}, not int", self.names[f], c.kind()),
        }
    }

    /// The whole keyword-bitmask column as a slice.
    ///
    /// # Panics
    /// Panics if the field is not a keywords column.
    #[inline]
    pub fn keyword_masks(&self, f: FieldId) -> &[u64] {
        match &self.columns[f] {
            Column::Keywords(v) => v,
            c => panic!("field {} is {}, not keywords", self.names[f], c.kind()),
        }
    }

    /// The whole text column as a slice.
    ///
    /// # Panics
    /// Panics if the field is not a text column.
    #[inline]
    pub fn texts(&self, f: FieldId) -> &[String] {
        match &self.columns[f] {
            Column::Str(v) => v,
            c => panic!("field {} is {}, not str", self.names[f], c.kind()),
        }
    }

    /// Integer value at (`f`, `id`).
    ///
    /// # Panics
    /// Panics if the field is not an int column.
    #[inline]
    pub fn int(&self, f: FieldId, id: u32) -> i64 {
        match &self.columns[f] {
            Column::Int(v) => v[id as usize],
            c => panic!("field {} is {}, not int", self.names[f], c.kind()),
        }
    }

    /// Keyword bitmask at (`f`, `id`).
    #[inline]
    pub fn keywords(&self, f: FieldId, id: u32) -> u64 {
        match &self.columns[f] {
            Column::Keywords(v) => v[id as usize],
            c => panic!("field {} is {}, not keywords", self.names[f], c.kind()),
        }
    }

    /// Text value at (`f`, `id`).
    #[inline]
    pub fn text(&self, f: FieldId, id: u32) -> &str {
        match &self.columns[f] {
            Column::Str(v) => &v[id as usize],
            c => panic!("field {} is {}, not str", self.names[f], c.kind()),
        }
    }

    /// Approximate heap bytes over all columns.
    pub fn memory_bytes(&self) -> usize {
        self.columns.iter().map(Column::memory_bytes).sum()
    }
}

/// Builder validating that all columns have equal length.
#[derive(Debug, Default)]
pub struct AttrStoreBuilder {
    names: Vec<String>,
    columns: Vec<Column>,
}

impl AttrStoreBuilder {
    /// Add any column.
    ///
    /// # Panics
    /// Panics on duplicate field names.
    pub fn add(mut self, name: &str, col: Column) -> Self {
        assert!(!self.names.iter().any(|n| n == name), "duplicate attribute field name: {name}");
        self.names.push(name.to_string());
        self.columns.push(col);
        self
    }

    /// Add an integer column.
    pub fn add_int(self, name: &str, values: Vec<i64>) -> Self {
        self.add(name, Column::Int(values))
    }

    /// Add a keyword-bitmask column.
    pub fn add_keywords(self, name: &str, masks: Vec<u64>) -> Self {
        self.add(name, Column::Keywords(masks))
    }

    /// Add a text column.
    pub fn add_text(self, name: &str, values: Vec<String>) -> Self {
        self.add(name, Column::Str(values))
    }

    /// Finish, validating row-count agreement.
    ///
    /// # Panics
    /// Panics if columns disagree on length.
    pub fn build(self) -> AttrStore {
        let n = self.columns.first().map_or(0, Column::len);
        for (name, col) in self.names.iter().zip(&self.columns) {
            assert_eq!(col.len(), n, "column {name} has {} rows, expected {n}", col.len());
        }
        AttrStore { names: self.names, columns: self.columns, n }
    }
}

/// Build a keyword bitmask from term indices (< 64).
///
/// # Panics
/// Panics if any index is ≥ 64.
pub fn keyword_mask(terms: &[u8]) -> u64 {
    let mut m = 0u64;
    for &t in terms {
        assert!(t < 64, "keyword index {t} out of range (max 63)");
        m |= 1u64 << t;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AttrStore {
        AttrStore::builder()
            .add_int("year", vec![1999, 2005, 2020])
            .add_keywords("areas", vec![0b011, 0b100, 0b110])
            .add_text("caption", vec!["a dog".into(), "a cat".into(), "a bird".into()])
            .build()
    }

    #[test]
    fn field_resolution_and_access() {
        let s = sample();
        assert_eq!(s.len(), 3);
        assert_eq!(s.num_fields(), 3);
        let year = s.field("year").unwrap();
        let areas = s.field("areas").unwrap();
        let cap = s.field("caption").unwrap();
        assert_eq!(s.int(year, 1), 2005);
        assert_eq!(s.keywords(areas, 2), 0b110);
        assert_eq!(s.text(cap, 0), "a dog");
        assert!(s.field("nope").is_none());
        assert_eq!(s.field_name(year), "year");
    }

    #[test]
    #[should_panic(expected = "expected 3")]
    fn mismatched_lengths_panic() {
        let _ = AttrStore::builder().add_int("a", vec![1, 2, 3]).add_int("b", vec![1]).build();
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_names_panic() {
        let _ = AttrStore::builder().add_int("a", vec![]).add_int("a", vec![]).build();
    }

    #[test]
    #[should_panic(expected = "not int")]
    fn wrong_kind_access_panics() {
        let s = sample();
        let cap = s.field("caption").unwrap();
        let _ = s.int(cap, 0);
    }

    #[test]
    fn keyword_mask_builds_bits() {
        assert_eq!(keyword_mask(&[0, 2, 5]), 0b100101);
        assert_eq!(keyword_mask(&[]), 0);
    }

    #[test]
    fn memory_accounting_nonzero() {
        assert!(sample().memory_bytes() > 0);
    }
}
