//! Selectivity estimation.
//!
//! ACORN's cost model (§5.2) routes a query to the pre-filter fallback when
//! its estimated selectivity is below `s_min = 1/γ`. The paper notes the
//! estimate "can be estimated empirically with or without knowing the
//! predicate set"; we implement the standard database approach — Bernoulli
//! sampling over the attribute store — plus an exact variant for analysis.
//! §5.2 also argues estimation errors degrade only efficiency, never result
//! quality; integration tests assert exactly that.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::attrs::AttrStore;
use crate::compiled::CompiledPredicate;
use crate::predicate::Predicate;

/// The one sampling loop behind both estimators: the row sequence depends
/// only on `(n, sample_size, seed)`, so interpreted and compiled estimation
/// see **identical samples** and — since compiled evaluation is bit-identical
/// to interpreted — return identical estimates. ACORN's fallback routing
/// (`s < s_min`, §5.2) therefore never changes with the evaluation engine.
fn sampled(n: usize, sample_size: usize, seed: u64, mut pass: impl FnMut(u32) -> bool) -> f64 {
    if n == 0 || sample_size == 0 {
        return 0.0;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut hits = 0usize;
    for _ in 0..sample_size {
        let id = rng.gen_range(0..n) as u32;
        if pass(id) {
            hits += 1;
        }
    }
    hits as f64 / sample_size as f64
}

/// Estimate the fraction of rows passing `predicate` from a uniform sample
/// of `sample_size` rows (with replacement), walking the AST per sample.
///
/// Returns 0.0 for an empty store. The standard error is
/// `sqrt(s(1-s)/sample_size)`; the default harness uses 1,000 samples,
/// giving ±1.6% absolute error at `s = 0.5`.
pub fn estimate_selectivity(
    attrs: &AttrStore,
    predicate: &Predicate,
    sample_size: usize,
    seed: u64,
) -> f64 {
    sampled(attrs.len(), sample_size, seed, |id| predicate.eval(attrs, id))
}

/// [`estimate_selectivity`] through an already-compiled predicate: same
/// sample sequence and (provably) same estimate, but each sample runs the
/// flat program instead of an interpretive AST walk — this is the fast
/// estimator the adaptive hybrid-search dispatch uses, and reusing the
/// query's compiled program means estimation adds no compilation cost.
pub fn estimate_selectivity_compiled(
    attrs: &AttrStore,
    compiled: &CompiledPredicate,
    sample_size: usize,
    seed: u64,
) -> f64 {
    sampled(attrs.len(), sample_size, seed, |id| compiled.eval(attrs, id))
}

/// [`estimate_selectivity_compiled`] that additionally records every sampled
/// row's verdict into `memo` (which must cover `attrs.len()` rows and be
/// freshly reset). The adaptive hybrid path seeds its per-query memo this
/// way, so a lazily-evaluated traversal never re-evaluates a row the
/// estimator already ran; duplicate draws within the sample are answered
/// from the memo too. The sample sequence — and therefore the estimate — is
/// identical to the non-seeding variants.
pub fn estimate_selectivity_seeding(
    attrs: &AttrStore,
    compiled: &CompiledPredicate,
    sample_size: usize,
    seed: u64,
    memo: &crate::memo::MemoTable,
) -> f64 {
    sampled(attrs.len(), sample_size, seed, |id| {
        memo.lookup(id).unwrap_or_else(|| {
            let verdict = compiled.eval(attrs, id);
            memo.record(id, verdict);
            verdict
        })
    })
}

/// [`estimate_selectivity`] over a **remapped universe**: sample positions
/// are drawn from `0..universe` with the usual `(universe, sample_size,
/// seed)`-determined sequence, and each position `p` is evaluated at row
/// `map(p)` of `attrs`. The segmented index estimates per-segment routing
/// this way (`universe` = segment rows, `map` = local → global id), so a
/// fully-merged segment samples **the same positions and verdicts** as a
/// from-scratch index over the surviving rows — routing, and therefore
/// results, stay bit-identical across the two.
pub fn estimate_selectivity_mapped(
    attrs: &AttrStore,
    predicate: &Predicate,
    sample_size: usize,
    seed: u64,
    universe: usize,
    map: impl Fn(u32) -> u32,
) -> f64 {
    sampled(universe, sample_size, seed, |p| predicate.eval(attrs, map(p)))
}

/// The compiled, memo-seeding form of [`estimate_selectivity_mapped`]: the
/// memo is keyed by the **sampled position** (the segment-local row id, the
/// same id space a `MemoFilter` over a remapped filter uses), while the
/// predicate runs on `attrs` row `map(p)`. Duplicate draws are answered from
/// the memo, exactly like [`estimate_selectivity_seeding`].
#[allow(clippy::too_many_arguments)]
pub fn estimate_selectivity_seeding_mapped(
    attrs: &AttrStore,
    compiled: &CompiledPredicate,
    sample_size: usize,
    seed: u64,
    memo: &crate::memo::MemoTable,
    universe: usize,
    map: impl Fn(u32) -> u32,
) -> f64 {
    sampled(universe, sample_size, seed, |p| {
        memo.lookup(p).unwrap_or_else(|| {
            let verdict = compiled.eval(attrs, map(p));
            memo.record(p, verdict);
            verdict
        })
    })
}

/// Exact selectivity by full scan (used for analysis and tests).
pub fn exact_selectivity(attrs: &AttrStore, predicate: &Predicate) -> f64 {
    let n = attrs.len();
    if n == 0 {
        return 0.0;
    }
    let mut hits = 0usize;
    for id in 0..n as u32 {
        if predicate.eval(attrs, id) {
            hits += 1;
        }
    }
    hits as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::AttrStore;

    fn store(n: usize) -> AttrStore {
        // x cycles 0..10, so Equals{value:0} has exact selectivity 0.1.
        AttrStore::builder().add_int("x", (0..n as i64).map(|i| i % 10).collect()).build()
    }

    #[test]
    fn exact_matches_construction() {
        let s = store(1000);
        let f = s.field("x").unwrap();
        let p = Predicate::Equals { field: f, value: 0 };
        assert!((exact_selectivity(&s, &p) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn estimate_converges_to_exact() {
        let s = store(10_000);
        let f = s.field("x").unwrap();
        let p = Predicate::Between { field: f, lo: 0, hi: 4 }; // s = 0.5
        let est = estimate_selectivity(&s, &p, 5000, 42);
        assert!((est - 0.5).abs() < 0.05, "estimate {est} too far from 0.5");
    }

    #[test]
    fn empty_store_is_zero() {
        let s = AttrStore::builder().add_int("x", vec![]).build();
        let p = Predicate::True;
        assert_eq!(estimate_selectivity(&s, &p, 100, 0), 0.0);
        assert_eq!(exact_selectivity(&s, &p), 0.0);
    }

    #[test]
    fn estimate_is_deterministic_per_seed() {
        let s = store(1000);
        let f = s.field("x").unwrap();
        let p = Predicate::Equals { field: f, value: 3 };
        let a = estimate_selectivity(&s, &p, 200, 7);
        let b = estimate_selectivity(&s, &p, 200, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn mapped_estimate_over_identity_matches_plain() {
        let s = store(2000);
        let f = s.field("x").unwrap();
        let p = Predicate::Between { field: f, lo: 1, hi: 6 };
        let plain = estimate_selectivity(&s, &p, 400, 13);
        let mapped = estimate_selectivity_mapped(&s, &p, 400, 13, s.len(), |p| p);
        assert_eq!(plain, mapped);

        // A shifted sub-universe samples the same positions but remapped
        // rows; with a constant-true predicate the estimate is still exact.
        let all = estimate_selectivity_mapped(&s, &Predicate::True, 400, 13, 100, |p| p + 500);
        assert_eq!(all, 1.0);
    }

    #[test]
    fn seeding_mapped_agrees_and_records_local_positions() {
        let s = store(3000);
        let f = s.field("x").unwrap();
        let p = Predicate::Equals { field: f, value: 4 };
        let c = CompiledPredicate::compile(&p);
        let mut memo = crate::memo::MemoTable::new();
        memo.reset_for(1000);
        // Sub-universe of 1000 positions mapped to rows 1000..2000.
        let est = estimate_selectivity_seeding_mapped(&s, &c, 500, 9, &memo, 1000, |p| p + 1000);
        let plain = estimate_selectivity_mapped(&s, &p, 500, 9, 1000, |p| p + 1000);
        assert_eq!(est, plain, "seeding must not change the estimate");
        assert!(memo.known_count() > 0, "sampled verdicts must be recorded");
        // Every recorded verdict sits at a local position (< 1000) and
        // matches the predicate at the mapped row.
        for local in 0..1000u32 {
            if let Some(v) = memo.lookup(local) {
                assert_eq!(v, p.eval(&s, local + 1000), "position {local}");
            }
        }
    }

    #[test]
    fn compiled_estimate_equals_interpreted() {
        let s = store(5000);
        let f = s.field("x").unwrap();
        for (p, seed) in [
            (Predicate::Equals { field: f, value: 0 }, 3u64),
            (Predicate::Between { field: f, lo: 2, hi: 6 }, 11),
            (Predicate::in_values(f, vec![1, 4, 9]), 29),
        ] {
            let c = CompiledPredicate::compile(&p);
            assert_eq!(
                estimate_selectivity(&s, &p, 500, seed),
                estimate_selectivity_compiled(&s, &c, 500, seed),
                "routing parity broken for seed {seed}"
            );
        }
    }
}
