//! Per-query predicate memoization.
//!
//! ACORN's overlapping one-/two-hop lookups revisit the same rows dozens of
//! times per query; without caching, each revisit re-evaluates the query
//! predicate (NaviX calls this out as the deciding factor in hybrid-search
//! throughput). A [`MemoTable`] is a tri-state memo over row ids — unknown /
//! known-pass / known-fail — packed as two bitset words per 64 rows, and a
//! [`MemoFilter`] wraps any [`NodeFilter`] so every row is evaluated **at
//! most once per query** no matter how many hops touch it.
//!
//! The table is owned by `SearchScratch` (in `acorn-hnsw`) and recycled
//! through its `ScratchPool`, so steady-state serving never allocates memo
//! words per query; resetting costs one `memset` of `n / 64` words. Interior
//! mutability uses `AtomicU64` words with `Relaxed` plain loads/stores (not
//! read-modify-write ops): the table is only ever used single-threaded
//! within one query — each worker owns its scratch — but the scratch that
//! carries it must stay `Sync`, which rules out `Cell`. On mainstream
//! targets a relaxed load/store compiles to the same `mov` a plain word
//! access would.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use crate::filter::NodeFilter;

/// Tri-state (unknown / pass / fail) memo over row ids `0..n`.
///
/// `known` and `pass` are parallel packed bitsets. Only `known` is cleared
/// on [`reset_for`](Self::reset_for): a `pass` bit is written together with
/// its `known` bit on every [`record`](Self::record), so stale `pass` bits
/// from a previous query are never observable.
#[derive(Debug, Default)]
pub struct MemoTable {
    known: Vec<AtomicU64>,
    pass: Vec<AtomicU64>,
}

impl Clone for MemoTable {
    fn clone(&self) -> Self {
        let copy = |v: &[AtomicU64]| v.iter().map(|w| AtomicU64::new(w.load(Relaxed))).collect();
        Self { known: copy(&self.known), pass: copy(&self.pass) }
    }
}

impl MemoTable {
    /// An empty table; size it with [`reset_for`](Self::reset_for).
    pub fn new() -> Self {
        Self::default()
    }

    /// Prepare for a query over rows `0..n`: grow to cover the universe and
    /// mark every row unknown.
    pub fn reset_for(&mut self, n: usize) {
        let words = n.div_ceil(64);
        if self.known.len() < words {
            self.known.resize_with(words, || AtomicU64::new(0));
            self.pass.resize_with(words, || AtomicU64::new(0));
        }
        for w in &self.known {
            w.store(0, Relaxed);
        }
    }

    /// Number of addressable rows.
    pub fn capacity(&self) -> usize {
        self.known.len() * 64
    }

    /// The memoized verdict for `id`, if one was recorded this query.
    ///
    /// # Panics
    /// Panics if `id` is beyond the capacity established by
    /// [`reset_for`](Self::reset_for).
    #[inline]
    pub fn lookup(&self, id: u32) -> Option<bool> {
        let (w, b) = (id as usize / 64, 1u64 << (id % 64));
        if self.known[w].load(Relaxed) & b == 0 {
            None
        } else {
            Some(self.pass[w].load(Relaxed) & b != 0)
        }
    }

    /// Record the verdict for `id` (overwrites any previous one).
    #[inline]
    pub fn record(&self, id: u32, pass: bool) {
        let (w, b) = (id as usize / 64, 1u64 << (id % 64));
        // Plain load/store (not fetch_or): the table is single-threaded
        // within a query, atomics only keep the carrying scratch `Sync`.
        self.known[w].store(self.known[w].load(Relaxed) | b, Relaxed);
        if pass {
            self.pass[w].store(self.pass[w].load(Relaxed) | b, Relaxed);
        } else {
            self.pass[w].store(self.pass[w].load(Relaxed) & !b, Relaxed);
        }
    }

    /// Number of rows with a recorded verdict (diagnostics/tests).
    pub fn known_count(&self) -> usize {
        self.known.iter().map(|w| w.load(Relaxed).count_ones() as usize).sum()
    }

    /// Heap bytes held by the two word arrays.
    pub fn memory_bytes(&self) -> usize {
        (self.known.len() + self.pass.len()) * 8
    }
}

/// A memoizing wrapper around any [`NodeFilter`]: first check per row
/// evaluates the inner filter and records the verdict; revisits are answered
/// from the memo. Search results are bit-identical to using the inner filter
/// directly (property tested) — only the evaluation count changes.
///
/// The filter takes ownership of the table for the duration of the query
/// (take it from the scratch with `SearchScratch::take_memo`, return it with
/// [`into_memo`](Self::into_memo)); [`hits`](Self::hits) reports how many
/// checks were answered from the memo, which callers feed into
/// `SearchStats::npred_cached`.
pub struct MemoFilter<'a, F: NodeFilter> {
    inner: &'a F,
    memo: MemoTable,
    hits: Cell<u64>,
}

impl<'a, F: NodeFilter> MemoFilter<'a, F> {
    /// Wrap `inner` with a memo that has been
    /// [`reset_for`](MemoTable::reset_for) the query's row universe.
    pub fn new(inner: &'a F, memo: MemoTable) -> Self {
        Self { inner, memo, hits: Cell::new(0) }
    }

    /// Checks answered from the memo (cache hits) so far.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// The memo table (for introspection).
    pub fn memo(&self) -> &MemoTable {
        &self.memo
    }

    /// Release the memo table back to its owner (typically the scratch).
    pub fn into_memo(self) -> MemoTable {
        self.memo
    }
}

impl<F: NodeFilter> NodeFilter for MemoFilter<'_, F> {
    #[inline]
    fn passes(&self, id: u32) -> bool {
        if let Some(verdict) = self.memo.lookup(id) {
            self.hits.set(self.hits.get() + 1);
            verdict
        } else {
            let verdict = self.inner.passes(id);
            self.memo.record(id, verdict);
            verdict
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::CountingFilter;
    use crate::AllPass;

    #[test]
    fn records_and_replays_verdicts() {
        let mut memo = MemoTable::new();
        memo.reset_for(130);
        assert!(memo.capacity() >= 130);
        assert_eq!(memo.lookup(64), None);
        memo.record(64, true);
        memo.record(129, false);
        assert_eq!(memo.lookup(64), Some(true));
        assert_eq!(memo.lookup(129), Some(false));
        assert_eq!(memo.known_count(), 2);
        memo.reset_for(130);
        assert_eq!(memo.lookup(64), None, "reset must forget verdicts");
    }

    #[test]
    fn stale_pass_bits_never_leak_across_queries() {
        let mut memo = MemoTable::new();
        memo.reset_for(64);
        memo.record(7, true);
        memo.reset_for(64);
        // The pass bit for 7 is still set internally, but unknown gates it.
        assert_eq!(memo.lookup(7), None);
        memo.record(7, false);
        assert_eq!(memo.lookup(7), Some(false), "record must overwrite the stale pass bit");
    }

    #[test]
    fn memo_filter_evaluates_each_row_once() {
        let inner = AllPass;
        let counted = CountingFilter::new(&inner);
        let mut memo = MemoTable::new();
        memo.reset_for(100);
        let mf = MemoFilter::new(&counted, memo);
        for round in 0..3 {
            for id in 0..100u32 {
                assert!(mf.passes(id), "round {round}");
            }
        }
        assert_eq!(counted.count(), 100, "inner filter must see each row exactly once");
        assert_eq!(mf.hits(), 200);
        assert_eq!(mf.memo().known_count(), 100);
    }

    #[test]
    fn grows_for_larger_universes() {
        let mut memo = MemoTable::new();
        memo.reset_for(10);
        memo.reset_for(1000);
        memo.record(999, true);
        assert_eq!(memo.lookup(999), Some(true));
    }
}
