//! The compiled predicate engine: vectorized 64-row block evaluation.
//!
//! `BENCH_hybrid.json` showed the hybrid query path is predicate-bound —
//! tens of thousands of `Predicate::eval` AST walks per query against only
//! hundreds of distance computations. ACORN's cost model (§6.3.2) *assumes*
//! the predicate check is a cheap constant-time operation; this module makes
//! that true by lowering the [`Predicate`] AST once per query into a flat
//! [`CompiledPredicate`] program:
//!
//! * the AST is [normalized](Predicate::normalize) first (constant-folded,
//!   `And`/`Or`-flattened, clauses stably reordered cheapest-first), so
//!   short-circuit evaluation runs constant-time compares before any
//!   `RegexMatch`;
//! * nodes live in one contiguous arena (`Vec<Op>`, children by index)
//!   instead of a pointer tree, and `In` lists are lowered to a binary
//!   search — or a single bitmask test when the value span fits in 64;
//! * every kernel evaluates a **64-row block** directly against the columnar
//!   [`AttrStore`] slices into a `u64` mask word. `And`/`Or` combine words
//!   with short-circuiting *active masks*: a child only evaluates rows still
//!   undecided, so a regex clause behind a cheap date filter runs on the few
//!   rows that survive the date check.
//!
//! [`CompiledPredicate::to_bitset`] (backing `Predicate::to_bitset`,
//! `BitmapFilter::from_predicate`, and the pre-filter fallback) is therefore
//! a word-at-a-time columnar scan, and
//! [`estimate_selectivity_compiled`](crate::selectivity::estimate_selectivity_compiled)
//! gets a fast sampled estimator. Results are bit-identical to interpreted
//! evaluation (property tested over random ASTs × stores).

use crate::attrs::AttrStore;
use crate::bitmap::Bitset;
use crate::filter::NodeFilter;
use crate::predicate::Predicate;
use crate::regex::Regex;
use crate::FieldId;

/// Coarse per-row cost of a compiled predicate, used by adaptive dispatch
/// (`AcornIndex::hybrid_search`) to choose between lazy memoized evaluation
/// and up-front block materialization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostClass {
    /// Bounded per-row work: column compares, membership tests, and their
    /// boolean combinations.
    Cheap,
    /// Contains a regex: per-row cost is unbounded, so evaluating each row
    /// **at most once** (materialize, then test bits) always wins.
    Expensive,
}

/// One node of the flattened program. Children are arena indices; a node's
/// children always precede it (post-order lowering), so the root is last.
#[derive(Debug, Clone)]
enum Op {
    /// Constant result (folded `True` / `!true`).
    Const(bool),
    /// `column[id] == value`.
    Equals { field: FieldId, value: i64 },
    /// `lo <= column[id] <= hi`.
    Between { field: FieldId, lo: i64, hi: i64 },
    /// Small-span membership: bit `v - base` of `mask`.
    InMask { field: FieldId, base: i64, mask: u64 },
    /// General sorted membership via binary search.
    InSorted { field: FieldId, values: Vec<i64> },
    /// `column[id] & mask != 0`.
    ContainsAny { field: FieldId, mask: u64 },
    /// `column[id] & mask == mask`.
    ContainsAll { field: FieldId, mask: u64 },
    /// Regex search over a text column.
    Regex { field: FieldId, regex: Regex },
    /// Conjunction over children (cheapest-first).
    And { children: Vec<u32> },
    /// Disjunction over children (cheapest-first).
    Or { children: Vec<u32> },
    /// Negation.
    Not { child: u32 },
}

/// A [`Predicate`] lowered to a flat block-evaluable program.
#[derive(Debug, Clone)]
pub struct CompiledPredicate {
    ops: Vec<Op>,
    root: u32,
    cost: u64,
    has_regex: bool,
}

impl CompiledPredicate {
    /// Lower `predicate` into its compiled form. The input is normalized
    /// first (see [`Predicate::normalize`]); the original value is not
    /// modified. Compilation is cheap — linear in the AST size — and done
    /// once per query.
    pub fn compile(predicate: &Predicate) -> Self {
        let normalized = predicate.clone().normalize();
        let mut ops = Vec::new();
        let root = lower(&normalized, &mut ops);
        let has_regex = ops.iter().any(|op| matches!(op, Op::Regex { .. }));
        Self { ops, root, cost: normalized.cost_weight(), has_regex }
    }

    /// Number of program nodes (after folding and flattening).
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Relative evaluation cost weight of the whole program.
    pub fn cost(&self) -> u64 {
        self.cost
    }

    /// True if any clause is a regex match.
    pub fn has_regex(&self) -> bool {
        self.has_regex
    }

    /// The dispatch cost class (see [`CostClass`]).
    pub fn cost_class(&self) -> CostClass {
        if self.has_regex {
            CostClass::Expensive
        } else {
            CostClass::Cheap
        }
    }

    /// Evaluate one row; bit-identical to `Predicate::eval` on the source
    /// AST. This is the scalar kernel behind lazy (memoized) filtering.
    #[inline]
    pub fn eval(&self, attrs: &AttrStore, id: u32) -> bool {
        self.eval_op(self.root, attrs, id)
    }

    fn eval_op(&self, op: u32, attrs: &AttrStore, id: u32) -> bool {
        match &self.ops[op as usize] {
            Op::Const(b) => *b,
            Op::Equals { field, value } => attrs.int(*field, id) == *value,
            Op::Between { field, lo, hi } => {
                let v = attrs.int(*field, id);
                *lo <= v && v <= *hi
            }
            Op::InMask { field, base, mask } => in_mask(attrs.int(*field, id), *base, *mask),
            Op::InSorted { field, values } => values.binary_search(&attrs.int(*field, id)).is_ok(),
            Op::ContainsAny { field, mask } => attrs.keywords(*field, id) & mask != 0,
            Op::ContainsAll { field, mask } => attrs.keywords(*field, id) & mask == *mask,
            Op::Regex { field, regex } => regex.is_match(attrs.text(*field, id)),
            Op::And { children } => children.iter().all(|&c| self.eval_op(c, attrs, id)),
            Op::Or { children } => children.iter().any(|&c| self.eval_op(c, attrs, id)),
            Op::Not { child } => !self.eval_op(*child, attrs, id),
        }
    }

    /// Evaluate rows `block * 64 .. min(block * 64 + 64, n)` into a mask
    /// word: bit `i` is set iff row `block * 64 + i` passes. Bits beyond the
    /// store's last row are zero.
    pub fn eval_block(&self, attrs: &AttrStore, block: usize) -> u64 {
        let base = block * 64;
        let n = attrs.len();
        debug_assert!(base < n.max(1), "block {block} out of range");
        let len = n.saturating_sub(base).min(64);
        let active = if len == 64 { u64::MAX } else { (1u64 << len) - 1 };
        self.eval_block_masked(self.root, attrs, base, active)
    }

    /// Block kernel: evaluate the rows whose bits are set in `active`,
    /// returning the subset that passes. Cheap leaves compute the whole
    /// block branchlessly and mask afterwards (the columnar loops
    /// autovectorize); the regex kernel iterates only the set bits, which is
    /// what makes cheapest-first `And` ordering pay off.
    fn eval_block_masked(&self, op: u32, attrs: &AttrStore, base: usize, active: u64) -> u64 {
        match &self.ops[op as usize] {
            Op::Const(b) => {
                if *b {
                    active
                } else {
                    0
                }
            }
            Op::Equals { field, value } => {
                block_ints(attrs.ints(*field), base, active, |v| v == *value)
            }
            Op::Between { field, lo, hi } => {
                block_ints(attrs.ints(*field), base, active, |v| *lo <= v && v <= *hi)
            }
            Op::InMask { field, base: b0, mask } => {
                block_ints(attrs.ints(*field), base, active, |v| in_mask(v, *b0, *mask))
            }
            Op::InSorted { field, values } => {
                block_ints(attrs.ints(*field), base, active, |v| values.binary_search(&v).is_ok())
            }
            Op::ContainsAny { field, mask } => {
                let col = attrs.keyword_masks(*field);
                let end = col.len().min(base + 64);
                let mut w = 0u64;
                for (i, &kw) in col[base..end].iter().enumerate() {
                    w |= u64::from(kw & mask != 0) << i;
                }
                w & active
            }
            Op::ContainsAll { field, mask } => {
                let col = attrs.keyword_masks(*field);
                let end = col.len().min(base + 64);
                let mut w = 0u64;
                for (i, &kw) in col[base..end].iter().enumerate() {
                    w |= u64::from(kw & mask == *mask) << i;
                }
                w & active
            }
            Op::Regex { field, regex } => {
                let col = attrs.texts(*field);
                let mut w = 0u64;
                let mut rem = active;
                while rem != 0 {
                    let i = rem.trailing_zeros() as u64;
                    rem &= rem - 1;
                    w |= u64::from(regex.is_match(&col[base + i as usize])) << i;
                }
                w
            }
            Op::And { children } => {
                let mut acc = active;
                for &c in children {
                    if acc == 0 {
                        break;
                    }
                    acc = self.eval_block_masked(c, attrs, base, acc);
                }
                acc
            }
            Op::Or { children } => {
                let mut acc = 0u64;
                let mut rem = active;
                for &c in children {
                    if rem == 0 {
                        break;
                    }
                    let w = self.eval_block_masked(c, attrs, base, rem);
                    acc |= w;
                    rem &= !w;
                }
                acc
            }
            Op::Not { child } => active & !self.eval_block_masked(*child, attrs, base, active),
        }
    }

    /// Materialize the predicate over all rows with the block kernels: one
    /// mask word per 64 rows, written straight into the bitset's backing
    /// words. Bit-identical to setting `eval(attrs, id)` per row.
    pub fn to_bitset(&self, attrs: &AttrStore) -> Bitset {
        let n = attrs.len();
        let mut words = vec![0u64; n.div_ceil(64)];
        for (b, w) in words.iter_mut().enumerate() {
            *w = self.eval_block(attrs, b);
        }
        Bitset::from_words(n, words)
    }
}

/// The `InMask` membership test. The subtraction runs in `i128` so extreme
/// `i64` values cannot wrap into the 0..64 window.
#[inline]
fn in_mask(v: i64, base: i64, mask: u64) -> bool {
    let d = v as i128 - base as i128;
    (0..64).contains(&d) && mask >> d & 1 == 1
}

/// Shared int-leaf block kernel: apply `pred` to rows `base..base+64` of
/// `col`, packing results into a mask word restricted to `active`.
#[inline]
fn block_ints(col: &[i64], base: usize, active: u64, pred: impl Fn(i64) -> bool) -> u64 {
    let end = col.len().min(base + 64);
    let mut w = 0u64;
    for (i, &v) in col[base..end].iter().enumerate() {
        w |= u64::from(pred(v)) << i;
    }
    w & active
}

/// Post-order lowering of a normalized AST into the arena; returns the index
/// of the node representing `p`.
fn lower(p: &Predicate, ops: &mut Vec<Op>) -> u32 {
    let op = match p {
        Predicate::True => Op::Const(true),
        Predicate::Equals { field, value } => Op::Equals { field: *field, value: *value },
        Predicate::Between { field, lo, hi } => Op::Between { field: *field, lo: *lo, hi: *hi },
        Predicate::In { field, values } => lower_in(*field, values),
        Predicate::ContainsAny { field, mask } => Op::ContainsAny { field: *field, mask: *mask },
        Predicate::ContainsAll { field, mask } => Op::ContainsAll { field: *field, mask: *mask },
        Predicate::RegexMatch { field, regex } => Op::Regex { field: *field, regex: regex.clone() },
        Predicate::And(ps) => Op::And { children: ps.iter().map(|c| lower(c, ops)).collect() },
        Predicate::Or(ps) => Op::Or { children: ps.iter().map(|c| lower(c, ops)).collect() },
        Predicate::Not(c) => Op::Not { child: lower(c, ops) },
    };
    ops.push(op);
    (ops.len() - 1) as u32
}

/// Choose the `In` kernel: a value span under 64 becomes one bitmask test,
/// anything else binary-searches the list. The input arrives sorted and
/// deduplicated — `compile` normalizes first, and [`Predicate::normalize`]
/// rewrites every `In` through [`Predicate::in_values`] (folding empty
/// lists to constant false), so no re-sort is needed here.
fn lower_in(field: FieldId, values: &[i64]) -> Op {
    debug_assert!(values.windows(2).all(|w| w[0] < w[1]), "normalize must sort+dedup In values");
    match (values.first().copied(), values.last().copied()) {
        (None, _) | (_, None) => Op::Const(false),
        (Some(lo), Some(hi)) => {
            if (hi as i128 - lo as i128) < 64 {
                let mut mask = 0u64;
                for &v in values {
                    mask |= 1u64 << (v - lo);
                }
                Op::InMask { field, base: lo, mask }
            } else {
                Op::InSorted { field, values: values.to_vec() }
            }
        }
    }
}

/// Lazy per-node evaluation through a compiled program: the compiled
/// counterpart of [`PredicateFilter`](crate::filter::PredicateFilter).
/// Usually wrapped in a [`MemoFilter`](crate::memo::MemoFilter) so each row
/// is evaluated at most once per query.
#[derive(Clone)]
pub struct CompiledFilter<'a> {
    attrs: &'a AttrStore,
    compiled: &'a CompiledPredicate,
}

impl<'a> CompiledFilter<'a> {
    /// Wrap a compiled predicate and the attribute store it applies to.
    pub fn new(attrs: &'a AttrStore, compiled: &'a CompiledPredicate) -> Self {
        Self { attrs, compiled }
    }
}

impl NodeFilter for CompiledFilter<'_> {
    #[inline]
    fn passes(&self, id: u32) -> bool {
        self.compiled.eval(self.attrs, id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> AttrStore {
        AttrStore::builder()
            .add_int("year", (0..100i64).map(|i| 1950 + i % 70).collect())
            .add_keywords("kw", (0..100u64).map(|i| i % 8).collect())
            .add_text("cap", (0..100).map(|i| format!("item {i} of red things")).collect())
            .build()
    }

    fn assert_matches_interpreted(p: &Predicate, s: &AttrStore) {
        let c = CompiledPredicate::compile(p);
        for id in 0..s.len() as u32 {
            assert_eq!(c.eval(s, id), p.eval(s, id), "row {id} of {}", p.describe(s));
        }
        let want = Bitset::from_ids(s.len(), (0..s.len() as u32).filter(|&i| p.eval(s, i)));
        assert_eq!(c.to_bitset(s), want, "bitset mismatch for {}", p.describe(s));
    }

    #[test]
    fn leaves_match_interpreted() {
        let s = store();
        let year = s.field("year").unwrap();
        let kw = s.field("kw").unwrap();
        let cap = s.field("cap").unwrap();
        for p in [
            Predicate::True,
            Predicate::Equals { field: year, value: 1960 },
            Predicate::Between { field: year, lo: 1955, hi: 1990 },
            Predicate::in_values(year, vec![1951, 2011, 1999]),
            Predicate::ContainsAny { field: kw, mask: 0b101 },
            Predicate::ContainsAll { field: kw, mask: 0b11 },
            Predicate::RegexMatch { field: cap, regex: Regex::new("item [0-4] ").unwrap() },
        ] {
            assert_matches_interpreted(&p, &s);
        }
    }

    #[test]
    fn combinators_and_tail_blocks() {
        let s = store(); // 100 rows: one full block + a 36-row tail
        let year = s.field("year").unwrap();
        let cap = s.field("cap").unwrap();
        let p = Predicate::And(vec![
            Predicate::RegexMatch { field: cap, regex: Regex::new("red").unwrap() },
            Predicate::Between { field: year, lo: 1950, hi: 1980 },
            Predicate::Not(Box::new(Predicate::Equals { field: year, value: 1970 })),
        ]);
        assert_matches_interpreted(&p, &s);
        let c = CompiledPredicate::compile(&p);
        // Tail block must zero bits beyond row 99.
        assert_eq!(c.eval_block(&s, 1) >> 36, 0);
    }

    #[test]
    fn empty_in_is_const_false() {
        let s = store();
        let year = s.field("year").unwrap();
        let p = Predicate::In { field: year, values: vec![] };
        let c = CompiledPredicate::compile(&p);
        assert_eq!(c.to_bitset(&s).count(), 0);
        assert_matches_interpreted(&p, &s);
    }

    #[test]
    fn small_span_in_lowers_to_bitmask() {
        let s = store();
        let year = s.field("year").unwrap();
        // Span 1951..=1999 < 64 → one InMask op (plus nothing else).
        let c = CompiledPredicate::compile(&Predicate::in_values(year, vec![1951, 1999, 1960]));
        assert_eq!(c.num_ops(), 1);
        assert!(matches!(c.cost_class(), CostClass::Cheap));
        // Span >= 64 → sorted binary search.
        let wide = CompiledPredicate::compile(&Predicate::in_values(year, vec![0, 1_000_000]));
        assert_eq!(wide.num_ops(), 1);
        assert_matches_interpreted(&Predicate::in_values(year, vec![0, 1_000_000]), &s);
    }

    #[test]
    fn regex_is_expensive_and_sorted_last() {
        let s = store();
        let year = s.field("year").unwrap();
        let cap = s.field("cap").unwrap();
        let p = Predicate::And(vec![
            Predicate::RegexMatch { field: cap, regex: Regex::new("red").unwrap() },
            Predicate::Equals { field: year, value: 1999 },
        ]);
        let c = CompiledPredicate::compile(&p);
        assert_eq!(c.cost_class(), CostClass::Expensive);
        assert!(c.has_regex());
        // Normalization hoists the cheap equality before the regex: the And
        // node is last (post-order root), its first child evaluates Equals.
        match &c.ops[c.root as usize] {
            Op::And { children } => {
                assert!(matches!(c.ops[children[0] as usize], Op::Equals { .. }));
                assert!(matches!(c.ops[children[1] as usize], Op::Regex { .. }));
            }
            other => panic!("expected And root, got {other:?}"),
        }
    }

    #[test]
    fn compiled_filter_matches_eval() {
        let s = store();
        let year = s.field("year").unwrap();
        let p = Predicate::Between { field: year, lo: 1960, hi: 1975 };
        let c = CompiledPredicate::compile(&p);
        let f = CompiledFilter::new(&s, &c);
        for id in 0..s.len() as u32 {
            assert_eq!(f.passes(id), p.eval(&s, id));
        }
    }

    #[test]
    fn constant_folding_shrinks_program() {
        let s = store();
        let year = s.field("year").unwrap();
        // And(True, Or(x)) folds to just x.
        let p = Predicate::And(vec![
            Predicate::True,
            Predicate::Or(vec![Predicate::Equals { field: year, value: 1950 }]),
        ]);
        let c = CompiledPredicate::compile(&p);
        assert_eq!(c.num_ops(), 1);
        assert_matches_interpreted(&p, &s);
    }
}
