//! A packed bitset over dataset row ids.
//!
//! Used to materialize predicate results ahead of search (the pre-filtering
//! baseline and the paper's `contains`-over-low-cardinality optimization,
//! §7.2) and as the `BitmapFilter` backing store.

/// A fixed-universe bitset over ids `0..len`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitset {
    words: Vec<u64>,
    len: usize,
}

impl Bitset {
    /// All-zeros bitset over `len` ids.
    pub fn new(len: usize) -> Self {
        Self { words: vec![0; len.div_ceil(64)], len }
    }

    /// All-ones bitset over `len` ids.
    pub fn full(len: usize) -> Self {
        let mut b = Self::new(len);
        for w in &mut b.words {
            *w = u64::MAX;
        }
        b.trim();
        b
    }

    /// Build from an iterator of set ids.
    pub fn from_ids(len: usize, ids: impl IntoIterator<Item = u32>) -> Self {
        let mut b = Self::new(len);
        for id in ids {
            b.set(id);
        }
        b
    }

    /// Build directly from packed words (bit `i` of `words[i / 64]` is row
    /// `i`). The word-at-a-time path used by compiled predicate kernels,
    /// which materialize 64 rows per store instead of calling
    /// [`set`](Self::set) per row. Bits beyond `len` are cleared.
    ///
    /// # Panics
    /// Panics if `words.len() != len.div_ceil(64)`.
    pub fn from_words(len: usize, words: Vec<u64>) -> Self {
        assert_eq!(words.len(), len.div_ceil(64), "word count must match the universe");
        let mut b = Self { words, len };
        b.trim();
        b
    }

    /// The packed backing words (bit `i` of `words()[i / 64]` is row `i`).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Universe size.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the universe is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set bit `id`.
    ///
    /// # Panics
    /// Panics if `id >= len`.
    #[inline]
    pub fn set(&mut self, id: u32) {
        assert!((id as usize) < self.len, "bit {id} out of range");
        self.words[id as usize / 64] |= 1u64 << (id % 64);
    }

    /// Clear bit `id`.
    #[inline]
    pub fn clear(&mut self, id: u32) {
        assert!((id as usize) < self.len, "bit {id} out of range");
        self.words[id as usize / 64] &= !(1u64 << (id % 64));
    }

    /// Test bit `id`.
    #[inline]
    pub fn get(&self, id: u32) -> bool {
        debug_assert!((id as usize) < self.len);
        (self.words[id as usize / 64] >> (id % 64)) & 1 == 1
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Fraction of the universe that is set (selectivity).
    pub fn selectivity(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.count() as f64 / self.len as f64
        }
    }

    /// In-place intersection.
    ///
    /// # Panics
    /// Panics on universe mismatch.
    pub fn and_with(&mut self, other: &Bitset) {
        assert_eq!(self.len, other.len, "bitset universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place union.
    pub fn or_with(&mut self, other: &Bitset) {
        assert_eq!(self.len, other.len, "bitset universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place complement (within the universe).
    pub fn negate(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.trim();
    }

    /// Zero any bits beyond `len` in the last word.
    fn trim(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    /// Grow the universe to `len` ids; new ids start cleared. Existing bits
    /// are preserved. Used by the segmented index, whose active segment's
    /// tombstone set must track a row count that grows with every insert.
    ///
    /// # Panics
    /// Panics if `len` would shrink the universe (tombstones never forget).
    pub fn grow(&mut self, len: usize) {
        assert!(len >= self.len, "Bitset::grow cannot shrink the universe");
        self.len = len;
        self.words.resize(len.div_ceil(64), 0);
    }

    /// Iterate over set ids in ascending order.
    pub fn iter_ones(&self) -> Ones<'_> {
        Ones { words: &self.words, word_idx: 0, current: self.words.first().copied().unwrap_or(0) }
    }

    /// Iterate over *clear* ids in ascending order (the complement within
    /// the universe). This is the survivor scan of merge compaction: with
    /// tombstoned rows a small minority, it skips dead rows 64 at a time.
    pub fn iter_zeros(&self) -> Zeros<'_> {
        let mut z = Zeros { bits: self, word_idx: 0, current: 0 };
        z.current = z.masked_complement(0);
        z
    }

    /// Collect set ids into a vector.
    pub fn to_ids(&self) -> Vec<u32> {
        self.iter_ones().collect()
    }

    /// Bytes consumed.
    pub fn memory_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

/// Iterator over set bit positions.
pub struct Ones<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        loop {
            if self.current != 0 {
                let tz = self.current.trailing_zeros();
                self.current &= self.current - 1;
                return Some((self.word_idx * 64) as u32 + tz);
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

/// Iterator over clear bit positions within the universe.
pub struct Zeros<'a> {
    bits: &'a Bitset,
    word_idx: usize,
    current: u64,
}

impl Zeros<'_> {
    /// The complement of word `w`, with bits beyond the universe cleared so
    /// the final partial word never yields out-of-range ids.
    fn masked_complement(&self, w: usize) -> u64 {
        let Some(&word) = self.bits.words.get(w) else { return 0 };
        let mut c = !word;
        if w + 1 == self.bits.words.len() {
            let rem = self.bits.len % 64;
            if rem != 0 {
                c &= (1u64 << rem) - 1;
            }
        }
        c
    }
}

impl Iterator for Zeros<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        loop {
            if self.current != 0 {
                let tz = self.current.trailing_zeros();
                self.current &= self.current - 1;
                return Some((self.word_idx * 64) as u32 + tz);
            }
            self.word_idx += 1;
            if self.word_idx >= self.bits.words.len() {
                return None;
            }
            self.current = self.masked_complement(self.word_idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut b = Bitset::new(130);
        assert!(!b.get(0));
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert_eq!(b.count(), 3);
        b.clear(64);
        assert!(!b.get(64));
        assert_eq!(b.count(), 2);
    }

    #[test]
    fn iter_ones_ascending() {
        let b = Bitset::from_ids(200, [5u32, 0, 199, 63, 64]);
        assert_eq!(b.to_ids(), vec![0, 5, 63, 64, 199]);
    }

    #[test]
    fn full_and_negate_respect_universe() {
        let mut b = Bitset::full(70);
        assert_eq!(b.count(), 70);
        b.negate();
        assert_eq!(b.count(), 0);
        b.negate();
        assert_eq!(b.count(), 70);
    }

    #[test]
    fn boolean_ops() {
        let a0 = Bitset::from_ids(10, [1u32, 2, 3]);
        let b = Bitset::from_ids(10, [2u32, 3, 4]);
        let mut a = a0.clone();
        a.and_with(&b);
        assert_eq!(a.to_ids(), vec![2, 3]);
        let mut o = a0.clone();
        o.or_with(&b);
        assert_eq!(o.to_ids(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn selectivity_fraction() {
        let b = Bitset::from_ids(100, 0u32..25);
        assert!((b.selectivity() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        let mut b = Bitset::new(8);
        b.set(8);
    }

    #[test]
    fn iter_zeros_is_the_complement() {
        for n in [0usize, 1, 63, 64, 65, 130, 200] {
            let b = Bitset::from_ids(n, (0..n as u32).filter(|i| i % 3 == 0));
            let zeros: Vec<u32> = b.iter_zeros().collect();
            let want: Vec<u32> = (0..n as u32).filter(|i| i % 3 != 0).collect();
            assert_eq!(zeros, want, "universe {n}");
        }
        // A full bitset yields no zeros, and never an out-of-range id from
        // the final partial word.
        assert_eq!(Bitset::full(70).iter_zeros().count(), 0);
    }

    #[test]
    fn grow_preserves_bits_and_extends_universe() {
        let mut b = Bitset::from_ids(10, [0u32, 9]);
        b.grow(130);
        assert_eq!(b.len(), 130);
        assert!(b.get(0) && b.get(9));
        assert_eq!(b.count(), 2);
        b.set(129);
        assert_eq!(b.to_ids(), vec![0, 9, 129]);
        assert_eq!(b.iter_zeros().count(), 127);
    }

    #[test]
    #[should_panic(expected = "cannot shrink")]
    fn grow_rejects_shrinking() {
        let mut b = Bitset::new(10);
        b.grow(5);
    }

    #[test]
    fn matches_vec_bool_oracle() {
        // Deterministic pseudo-random pattern.
        let n = 500usize;
        let mut oracle = vec![false; n];
        let mut b = Bitset::new(n);
        let mut x = 12345u64;
        for _ in 0..300 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let id = (x >> 33) as usize % n;
            oracle[id] = true;
            b.set(id as u32);
        }
        for (i, &o) in oracle.iter().enumerate() {
            assert_eq!(b.get(i as u32), o, "bit {i}");
        }
        assert_eq!(b.count(), oracle.iter().filter(|&&x| x).count());
    }
}
