//! The hot-path filtering contract used by every index.
//!
//! Graph search evaluates "does row `id` pass the query predicate?" once per
//! scanned neighbor. [`NodeFilter`] abstracts over the two realistic
//! strategies:
//!
//! * [`PredicateFilter`] — evaluate the predicate AST lazily per node
//!   (cheap for bitmask/int predicates; what ACORN's analysis assumes is a
//!   constant-time check, §6.3.2).
//! * [`BitmapFilter`] — precompute a [`Bitset`] once per query (`O(n)` up
//!   front, one load per check; what Weaviate does, and what we use for
//!   expensive predicates like regex so that per-node cost stays constant).
//!
//! [`CountingFilter`] wraps any filter to count evaluations (the `npred`
//! statistic), and [`AllPass`] turns a hybrid index into a plain ANN index.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::attrs::AttrStore;
use crate::bitmap::Bitset;
use crate::predicate::Predicate;

/// "Does dataset row `id` pass this query's predicate?"
pub trait NodeFilter {
    /// Evaluate row `id`.
    fn passes(&self, id: u32) -> bool;

    /// Invoke `f` for every id in `0..n` that passes, in ascending order,
    /// returning the number of [`passes`](Self::passes) evaluations
    /// performed (the `npred` accounting the caller owes).
    ///
    /// The default evaluates all `n` rows. Filters with a materialized
    /// representation override it to skip failing rows wholesale:
    /// [`BitmapFilter`] scans its bitset word-by-word (64 rows per branch)
    /// and performs zero per-row evaluations, which is what makes the
    /// pre-filter fallback `O(s·n)` instead of `O(n)` predicate calls.
    fn for_each_passing(&self, n: usize, f: &mut dyn FnMut(u32)) -> u64 {
        for id in 0..n as u32 {
            if self.passes(id) {
                f(id);
            }
        }
        n as u64
    }
}

/// Filter that accepts everything (pure ANN search).
#[derive(Debug, Clone, Copy, Default)]
pub struct AllPass;

impl NodeFilter for AllPass {
    #[inline]
    fn passes(&self, _id: u32) -> bool {
        true
    }
}

/// Lazy per-node predicate evaluation.
#[derive(Clone)]
pub struct PredicateFilter<'a> {
    attrs: &'a AttrStore,
    predicate: &'a Predicate,
}

impl<'a> PredicateFilter<'a> {
    /// Wrap a predicate and the attribute store it applies to.
    pub fn new(attrs: &'a AttrStore, predicate: &'a Predicate) -> Self {
        Self { attrs, predicate }
    }
}

impl NodeFilter for PredicateFilter<'_> {
    #[inline]
    fn passes(&self, id: u32) -> bool {
        self.predicate.eval(self.attrs, id)
    }
}

/// Precomputed bitmap filter.
#[derive(Debug, Clone)]
pub struct BitmapFilter {
    bits: Bitset,
}

impl BitmapFilter {
    /// Wrap an existing bitset.
    pub fn new(bits: Bitset) -> Self {
        Self { bits }
    }

    /// Materialize a predicate into a bitmap filter.
    pub fn from_predicate(attrs: &AttrStore, predicate: &Predicate) -> Self {
        Self { bits: predicate.to_bitset(attrs) }
    }

    /// The underlying bitset.
    pub fn bits(&self) -> &Bitset {
        &self.bits
    }

    /// Exact selectivity of the materialized predicate.
    pub fn selectivity(&self) -> f64 {
        self.bits.selectivity()
    }
}

impl NodeFilter for BitmapFilter {
    #[inline]
    fn passes(&self, id: u32) -> bool {
        self.bits.get(id)
    }

    fn for_each_passing(&self, n: usize, f: &mut dyn FnMut(u32)) -> u64 {
        for id in self.bits.iter_ones() {
            if id as usize >= n {
                break; // iter_ones is ascending; nothing below n remains
            }
            f(id);
        }
        0 // the word-level scan performs no per-row predicate evaluations
    }
}

/// Wrapper counting predicate evaluations (thread-safe so the parallel QPS
/// driver can share it).
pub struct CountingFilter<'a, F: NodeFilter + ?Sized> {
    inner: &'a F,
    count: AtomicU64,
}

impl<'a, F: NodeFilter + ?Sized> CountingFilter<'a, F> {
    /// Wrap `inner`.
    pub fn new(inner: &'a F) -> Self {
        Self { inner, count: AtomicU64::new(0) }
    }

    /// Evaluations performed so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

impl<F: NodeFilter + ?Sized> NodeFilter for CountingFilter<'_, F> {
    #[inline]
    fn passes(&self, id: u32) -> bool {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.inner.passes(id)
    }
}

impl<F: NodeFilter + ?Sized> NodeFilter for &F {
    #[inline]
    fn passes(&self, id: u32) -> bool {
        (**self).passes(id)
    }

    #[inline]
    fn for_each_passing(&self, n: usize, f: &mut dyn FnMut(u32)) -> u64 {
        (**self).for_each_passing(n, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> AttrStore {
        AttrStore::builder().add_int("x", vec![1, 2, 3, 4, 5]).build()
    }

    #[test]
    fn predicate_filter_evaluates_lazily() {
        let s = store();
        let f = s.field("x").unwrap();
        let p = Predicate::Between { field: f, lo: 2, hi: 4 };
        let filter = PredicateFilter::new(&s, &p);
        assert!(!filter.passes(0));
        assert!(filter.passes(1));
        assert!(filter.passes(3));
        assert!(!filter.passes(4));
    }

    #[test]
    fn bitmap_filter_matches_lazy_filter() {
        let s = store();
        let f = s.field("x").unwrap();
        let p = Predicate::Equals { field: f, value: 3 };
        let lazy = PredicateFilter::new(&s, &p);
        let bm = BitmapFilter::from_predicate(&s, &p);
        for id in 0..s.len() as u32 {
            assert_eq!(lazy.passes(id), bm.passes(id), "row {id}");
        }
        assert!((bm.selectivity() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn counting_filter_counts() {
        let f = AllPass;
        let c = CountingFilter::new(&f);
        for id in 0..7 {
            let _ = c.passes(id);
        }
        assert_eq!(c.count(), 7);
    }

    #[test]
    fn all_pass_accepts_all() {
        assert!(AllPass.passes(0));
        assert!(AllPass.passes(u32::MAX));
    }

    #[test]
    fn for_each_passing_default_visits_passing_rows_in_order() {
        let s = store();
        let f = s.field("x").unwrap();
        let p = Predicate::Between { field: f, lo: 2, hi: 4 };
        let filter = PredicateFilter::new(&s, &p);
        let mut seen = Vec::new();
        let evals = filter.for_each_passing(5, &mut |id| seen.push(id));
        assert_eq!(seen, vec![1, 2, 3]);
        assert_eq!(evals, 5, "default path evaluates every row");
    }

    #[test]
    fn bitmap_fast_path_skips_evaluations_and_respects_n() {
        let bm = BitmapFilter::new(Bitset::from_ids(200, [0u32, 63, 64, 150, 199]));
        let mut seen = Vec::new();
        let evals = bm.for_each_passing(200, &mut |id| seen.push(id));
        assert_eq!(seen, vec![0, 63, 64, 150, 199]);
        assert_eq!(evals, 0, "word-level scan must not call passes()");
        // A smaller n truncates the scan (universe larger than the dataset).
        seen.clear();
        let _ = bm.for_each_passing(100, &mut |id| seen.push(id));
        assert_eq!(seen, vec![0, 63, 64]);
        // The forwarding impl for &F must preserve the fast path.
        seen.clear();
        let by_ref: &BitmapFilter = &bm;
        let evals = by_ref.for_each_passing(200, &mut |id| seen.push(id));
        assert_eq!(evals, 0);
        assert_eq!(seen.len(), 5);
    }
}
