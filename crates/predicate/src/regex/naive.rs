//! A deliberately simple backtracking matcher used as a property-test
//! oracle for the Pike VM.
//!
//! Correctness over speed: this walks the AST directly with explicit
//! backtracking and memoization of `(node, position)` failures to stay
//! polynomial on the small inputs proptest generates. It shares no code with
//! the production engine, so agreement between the two is meaningful.

use super::parser::Ast;

/// Oracle implementation of unanchored `is_match`.
pub fn is_match(ast: &Ast, text: &str) -> bool {
    let chars: Vec<char> = text.chars().collect();
    for start in 0..=chars.len() {
        let mut found = false;
        match_node(ast, &chars, start, &mut |_| {
            found = true;
        });
        if found {
            return true;
        }
    }
    false
}

/// Call `k` with every position reachable by matching `ast` starting at `pos`.
fn match_node(ast: &Ast, text: &[char], pos: usize, k: &mut dyn FnMut(usize)) {
    match ast {
        Ast::Empty => k(pos),
        Ast::Char(c) => {
            if text.get(pos) == Some(c) {
                k(pos + 1);
            }
        }
        Ast::Any => {
            if pos < text.len() {
                k(pos + 1);
            }
        }
        Ast::Class { .. } => {
            if let Some(&c) = text.get(pos) {
                if ast.class_contains(c) {
                    k(pos + 1);
                }
            }
        }
        Ast::StartAnchor => {
            if pos == 0 {
                k(pos);
            }
        }
        Ast::EndAnchor => {
            if pos == text.len() {
                k(pos);
            }
        }
        Ast::Concat(seq) => match_seq(seq, text, pos, k),
        Ast::Alt(branches) => {
            for b in branches {
                match_node(b, text, pos, k);
            }
        }
        Ast::Opt(inner) => {
            k(pos);
            match_node(inner, text, pos, k);
        }
        Ast::Star(inner) => {
            let mut seen = vec![false; text.len() + 1];
            star_positions(inner, text, pos, &mut seen, k);
        }
        Ast::Plus(inner) => {
            let mut seen = vec![false; text.len() + 1];
            match_node(inner, text, pos, &mut |p| {
                star_positions(inner, text, p, &mut seen, k);
            });
        }
    }
}

/// All positions reachable by zero or more repetitions of `inner`.
fn star_positions(
    inner: &Ast,
    text: &[char],
    pos: usize,
    seen: &mut Vec<bool>,
    k: &mut dyn FnMut(usize),
) {
    if seen[pos] {
        return;
    }
    seen[pos] = true;
    k(pos);
    match_node(inner, text, pos, &mut |p| {
        star_positions(inner, text, p, seen, k);
    });
}

fn match_seq(seq: &[Ast], text: &[char], pos: usize, k: &mut dyn FnMut(usize)) {
    match seq {
        [] => k(pos),
        [head, rest @ ..] => {
            match_node(head, text, pos, &mut |p| match_seq(rest, text, p, k));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::parser::parse;

    fn m(pat: &str, text: &str) -> bool {
        is_match(&parse(pat).unwrap(), text)
    }

    #[test]
    fn oracle_basics() {
        assert!(m("abc", "xxabcx"));
        assert!(!m("abc", "abd"));
        assert!(m("^a+b$", "aab"));
        assert!(!m("^a+b$", "aabx"));
        assert!(m("(a|b)*c", "abbac"));
        assert!(m("x?", ""));
    }

    #[test]
    fn oracle_handles_empty_star_without_looping() {
        // (a?)* can repeat the empty match; position memoization must stop it.
        assert!(m("^(a?)*$", "aaa"));
        assert!(m("()*", "x"));
    }
}
