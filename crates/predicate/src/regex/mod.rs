//! A from-scratch regular-expression engine.
//!
//! The LAION workload in the ACORN paper issues `regex-match` predicates of
//! 2–10 tokens (e.g. `^[0-9]`) against image captions. The offline-crate
//! policy of this reproduction rules out the `regex` crate, so this module
//! implements the classic two-stage pipeline:
//!
//! 1. [`parser`] — recursive-descent parse into an AST supporting literals,
//!    `.`, character classes (`[a-z0-9]`, `[^...]`), anchors (`^`, `$`),
//!    quantifiers (`*`, `+`, `?`), alternation (`|`), grouping, and the
//!    escapes `\d \D \w \W \s \S` plus punctuation escapes.
//! 2. [`nfa`] — Thompson construction compiled to a small instruction
//!    program, executed by a Pike-style virtual machine in `O(len · states)`
//!    time with no backtracking (and therefore no pathological inputs).
//!
//! Matching is *unanchored search* semantics: `is_match` reports whether any
//! substring matches, with `^`/`$` asserting text boundaries — the same
//! semantics the paper's FAISS-based implementation gets from `std::regex`.
//!
//! [`naive`] contains an independent backtracking matcher used as a
//! property-test oracle.

pub mod naive;
pub mod nfa;
pub mod parser;

pub use parser::{Ast, ParseError};

use nfa::Program;

/// A compiled regular expression.
#[derive(Debug, Clone)]
pub struct Regex {
    pattern: String,
    program: Program,
}

impl Regex {
    /// Compile `pattern`.
    pub fn new(pattern: &str) -> Result<Self, ParseError> {
        let ast = parser::parse(pattern)?;
        let program = Program::compile(&ast);
        Ok(Self { pattern: pattern.to_string(), program })
    }

    /// The source pattern.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// True if any substring of `text` matches the pattern.
    pub fn is_match(&self, text: &str) -> bool {
        self.program.is_match(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, text: &str) -> bool {
        Regex::new(pat).unwrap().is_match(text)
    }

    #[test]
    fn literal_substring_search() {
        assert!(m("cat", "a cat sat"));
        assert!(!m("dog", "a cat sat"));
        assert!(m("", "anything"), "empty pattern matches everywhere");
    }

    #[test]
    fn dot_matches_any_single_char() {
        assert!(m("c.t", "cut"));
        assert!(m("c.t", "cat"));
        assert!(!m("c.t", "ct"));
    }

    #[test]
    fn classes_and_ranges() {
        assert!(m("[0-9]", "abc7"));
        assert!(!m("[0-9]", "abc"));
        assert!(m("[a-cx]", "x"));
        assert!(m("[^0-9]", "5a"));
        assert!(!m("[^0-9]", "55"));
    }

    #[test]
    fn anchors() {
        assert!(m("^ab", "abc"));
        assert!(!m("^bc", "abc"));
        assert!(m("bc$", "abc"));
        assert!(!m("ab$", "abc"));
        assert!(m("^abc$", "abc"));
        assert!(!m("^abc$", "abcd"));
        assert!(m("^$", ""));
        assert!(!m("^$", "x"));
    }

    #[test]
    fn quantifiers() {
        assert!(m("ab*c", "ac"));
        assert!(m("ab*c", "abbbc"));
        assert!(m("ab+c", "abc"));
        assert!(!m("ab+c", "ac"));
        assert!(m("ab?c", "ac"));
        assert!(m("ab?c", "abc"));
        assert!(!m("ab?c", "abbc"));
    }

    #[test]
    fn alternation_and_groups() {
        assert!(m("cat|dog", "hotdog"));
        assert!(m("a(b|c)d", "acd"));
        assert!(!m("a(b|c)d", "aed"));
        assert!(m("(ab)+", "xabab"));
        assert!(m("^(a|b)*$", "abba"));
        assert!(!m("^(a|b)*$", "abca"));
    }

    #[test]
    fn escape_classes() {
        assert!(m(r"\d+", "id 42"));
        assert!(!m(r"^\d", "x1"));
        assert!(m(r"\w+", "hello"));
        assert!(m(r"\s", "a b"));
        assert!(m(r"\D", "1a"));
        assert!(m(r"a\.b", "a.b"));
        assert!(!m(r"a\.b", "axb"));
    }

    #[test]
    fn paper_style_patterns() {
        // "2-10 regex tokens (e.g. ^[0-9])" — §7.1.2.
        assert!(m("^[0-9]", "3 dogs"));
        assert!(!m("^[0-9]", "three dogs"));
        assert!(m("a photo of .* dog", "a photo of a large dog"));
        assert!(m("(sunny|cloudy) day", "a cloudy day outside"));
    }

    #[test]
    fn no_pathological_backtracking() {
        // Classic catastrophic case for backtrackers: (a+)+b vs "aaaa...c".
        let text = "a".repeat(64) + "c";
        let re = Regex::new("(a+)+b").unwrap();
        let t0 = std::time::Instant::now();
        assert!(!re.is_match(&text));
        assert!(t0.elapsed().as_millis() < 500, "NFA must not backtrack exponentially");
    }

    #[test]
    fn unicode_chars_work() {
        assert!(m("héllo", "well héllo there"));
        assert!(m("^.$", "é"));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(Regex::new("a(b").is_err());
        assert!(Regex::new("[a-").is_err());
        assert!(Regex::new("*a").is_err());
        assert!(Regex::new(r"a\").is_err());
    }
}
