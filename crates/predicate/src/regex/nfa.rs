//! Thompson construction and Pike-VM execution.
//!
//! The AST is compiled to a flat instruction program; execution maintains the
//! set of live NFA states per input position (a "thread list"), giving
//! `O(len(text) · len(program))` worst-case matching with zero backtracking.

use super::parser::Ast;

/// One NFA instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// Consume one specific character.
    Char(char),
    /// Consume any one character.
    Any,
    /// Consume one character inside (or outside, if negated) the ranges.
    Class {
        /// True for negated classes.
        negated: bool,
        /// Inclusive ranges.
        ranges: Box<[(char, char)]>,
    },
    /// Fork execution to both targets (epsilon).
    Split(u32, u32),
    /// Jump to target (epsilon).
    Jmp(u32),
    /// Zero-width start-of-text assertion.
    AssertStart,
    /// Zero-width end-of-text assertion.
    AssertEnd,
    /// Accept.
    Match,
}

/// A compiled regex program.
#[derive(Debug, Clone)]
pub struct Program {
    insts: Vec<Inst>,
}

impl Program {
    /// Compile an AST via Thompson construction.
    pub fn compile(ast: &Ast) -> Self {
        let mut insts = Vec::new();
        emit(ast, &mut insts);
        insts.push(Inst::Match);
        Self { insts }
    }

    /// Number of instructions (used by tests and complexity accounting).
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if the program is trivially empty (never constructed in practice).
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Unanchored search: does any substring of `text` match?
    pub fn is_match(&self, text: &str) -> bool {
        let chars: Vec<char> = text.chars().collect();
        let n = self.insts.len();
        let mut current: Vec<u32> = Vec::with_capacity(n);
        let mut next: Vec<u32> = Vec::with_capacity(n);
        let mut on_current = vec![false; n];
        let mut on_next = vec![false; n];

        // Start a thread at position 0.
        if self.add_thread(0, 0, chars.len(), &mut current, &mut on_current) {
            return true;
        }

        for (pos, &c) in chars.iter().enumerate() {
            next.clear();
            on_next.fill(false);
            for &pc in &current {
                match &self.insts[pc as usize] {
                    Inst::Char(want)
                        if *want == c
                            && self.add_thread(
                                pc + 1,
                                pos + 1,
                                chars.len(),
                                &mut next,
                                &mut on_next,
                            ) =>
                    {
                        return true;
                    }
                    Inst::Any
                        if self.add_thread(
                            pc + 1,
                            pos + 1,
                            chars.len(),
                            &mut next,
                            &mut on_next,
                        ) =>
                    {
                        return true;
                    }
                    Inst::Class { negated, ranges } => {
                        let inside = ranges.iter().any(|&(lo, hi)| c >= lo && c <= hi);
                        if inside != *negated
                            && self.add_thread(
                                pc + 1,
                                pos + 1,
                                chars.len(),
                                &mut next,
                                &mut on_next,
                            )
                        {
                            return true;
                        }
                    }
                    // Epsilon instructions were resolved by add_thread.
                    _ => {}
                }
            }
            std::mem::swap(&mut current, &mut next);
            std::mem::swap(&mut on_current, &mut on_next);
            // Unanchored search: seed a fresh attempt starting at pos + 1.
            if self.add_thread(0, pos + 1, chars.len(), &mut current, &mut on_current) {
                return true;
            }
        }
        false
    }

    /// Follow epsilon transitions from `pc`, adding consuming instructions to
    /// the thread list. Returns `true` if a `Match` is reached.
    fn add_thread(
        &self,
        pc: u32,
        pos: usize,
        text_len: usize,
        list: &mut Vec<u32>,
        on_list: &mut [bool],
    ) -> bool {
        if on_list[pc as usize] {
            return false;
        }
        on_list[pc as usize] = true;
        match &self.insts[pc as usize] {
            Inst::Jmp(t) => self.add_thread(*t, pos, text_len, list, on_list),
            Inst::Split(a, b) => {
                self.add_thread(*a, pos, text_len, list, on_list)
                    || self.add_thread(*b, pos, text_len, list, on_list)
            }
            Inst::AssertStart => pos == 0 && self.add_thread(pc + 1, pos, text_len, list, on_list),
            Inst::AssertEnd => {
                pos == text_len && self.add_thread(pc + 1, pos, text_len, list, on_list)
            }
            Inst::Match => true,
            _ => {
                list.push(pc);
                false
            }
        }
    }
}

/// Emit instructions for `ast` into `out` (Thompson construction).
fn emit(ast: &Ast, out: &mut Vec<Inst>) {
    match ast {
        Ast::Empty => {}
        Ast::Char(c) => out.push(Inst::Char(*c)),
        Ast::Any => out.push(Inst::Any),
        Ast::Class { negated, ranges } => {
            out.push(Inst::Class { negated: *negated, ranges: ranges.clone().into_boxed_slice() })
        }
        Ast::StartAnchor => out.push(Inst::AssertStart),
        Ast::EndAnchor => out.push(Inst::AssertEnd),
        Ast::Concat(seq) => {
            for node in seq {
                emit(node, out);
            }
        }
        Ast::Alt(branches) => {
            // Chain of splits; each branch jumps to the common end.
            let mut jmp_slots = Vec::new();
            for (i, branch) in branches.iter().enumerate() {
                let last = i + 1 == branches.len();
                if last {
                    emit(branch, out);
                } else {
                    let split_at = out.len();
                    out.push(Inst::Split(0, 0)); // patched below
                    emit(branch, out);
                    let jmp_at = out.len();
                    out.push(Inst::Jmp(0)); // patched below
                    jmp_slots.push(jmp_at);
                    let next_branch = out.len() as u32;
                    out[split_at] = Inst::Split(split_at as u32 + 1, next_branch);
                }
            }
            let end = out.len() as u32;
            for slot in jmp_slots {
                out[slot] = Inst::Jmp(end);
            }
        }
        Ast::Star(inner) => {
            let split_at = out.len();
            out.push(Inst::Split(0, 0));
            emit(inner, out);
            out.push(Inst::Jmp(split_at as u32));
            let end = out.len() as u32;
            out[split_at] = Inst::Split(split_at as u32 + 1, end);
        }
        Ast::Plus(inner) => {
            let start = out.len() as u32;
            emit(inner, out);
            let split_at = out.len();
            out.push(Inst::Split(start, split_at as u32 + 1));
        }
        Ast::Opt(inner) => {
            let split_at = out.len();
            out.push(Inst::Split(0, 0));
            emit(inner, out);
            let end = out.len() as u32;
            out[split_at] = Inst::Split(split_at as u32 + 1, end);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::parser::parse;

    fn prog(pat: &str) -> Program {
        Program::compile(&parse(pat).unwrap())
    }

    #[test]
    fn compile_sizes_are_linear() {
        assert_eq!(prog("abc").len(), 4); // 3 chars + Match
        assert_eq!(prog("a*").len(), 4); // Split, Char, Jmp, Match
        assert_eq!(prog("a|b").len(), 5); // Split, a, Jmp, b, Match
    }

    #[test]
    fn star_accepts_zero_and_many() {
        let p = prog("^a*$");
        assert!(p.is_match(""));
        assert!(p.is_match("aaaa"));
        assert!(!p.is_match("ab"));
    }

    #[test]
    fn alternation_branch_order_irrelevant() {
        for pat in ["^(abc|abd)$", "^(abd|abc)$"] {
            let p = prog(pat);
            assert!(p.is_match("abc"));
            assert!(p.is_match("abd"));
            assert!(!p.is_match("abe"));
        }
    }

    #[test]
    fn unanchored_restart_finds_late_matches() {
        let p = prog("aab");
        assert!(p.is_match("aaaab"));
        assert!(p.is_match("xxaabxx"));
        assert!(!p.is_match("aba ab"));
    }

    #[test]
    fn thread_dedup_keeps_lists_bounded() {
        // (a|a|a)* explodes in a naive NFA walker; thread dedup keeps it linear.
        let p = prog("(a|a|a)*b");
        let text = "a".repeat(2000);
        assert!(!p.is_match(&text));
        assert!(p.is_match(&(text + "b")));
    }

    #[test]
    fn end_anchor_mid_pattern() {
        let p = prog("a$b");
        assert!(!p.is_match("ab"), "nothing can follow $");
    }
}
