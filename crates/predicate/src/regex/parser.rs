//! Recursive-descent parser producing the regex AST.
//!
//! Grammar (standard precedence: alternation < concatenation < repetition):
//!
//! ```text
//! alt    := concat ('|' concat)*
//! concat := repeat*
//! repeat := atom ('*' | '+' | '?')*
//! atom   := '(' alt ')' | class | '.' | '^' | '$' | escape | literal
//! class  := '[' '^'? item+ ']'    item := c | c '-' c
//! ```

use std::fmt;

/// Regex syntax tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ast {
    /// Matches the empty string.
    Empty,
    /// A single literal character.
    Char(char),
    /// `.` — any single character.
    Any,
    /// A character class; `ranges` are inclusive, `negated` flips membership.
    Class {
        /// True for `[^...]`.
        negated: bool,
        /// Inclusive character ranges (single chars are `(c, c)`).
        ranges: Vec<(char, char)>,
    },
    /// `^` — start-of-text assertion.
    StartAnchor,
    /// `$` — end-of-text assertion.
    EndAnchor,
    /// Sequence.
    Concat(Vec<Ast>),
    /// Alternation.
    Alt(Vec<Ast>),
    /// Zero or more.
    Star(Box<Ast>),
    /// One or more.
    Plus(Box<Ast>),
    /// Zero or one.
    Opt(Box<Ast>),
}

impl Ast {
    /// True if `c` is a member of this class node.
    ///
    /// # Panics
    /// Panics when called on a non-class node.
    pub fn class_contains(&self, c: char) -> bool {
        match self {
            Ast::Class { negated, ranges } => {
                let inside = ranges.iter().any(|&(lo, hi)| c >= lo && c <= hi);
                inside != *negated
            }
            _ => panic!("class_contains on non-class node"),
        }
    }
}

/// A regex syntax error with byte position context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Character offset where the error was detected.
    pub position: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex parse error at {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

/// Parse `pattern` into an [`Ast`].
pub fn parse(pattern: &str) -> Result<Ast, ParseError> {
    let mut p = Parser { chars: pattern.chars().collect(), pos: 0 };
    let ast = p.alt()?;
    if p.pos != p.chars.len() {
        return Err(p.err("unexpected trailing input (unbalanced ')'?)"));
    }
    Ok(ast)
}

impl Parser {
    fn err(&self, msg: &str) -> ParseError {
        ParseError { message: msg.to_string(), position: self.pos }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn alt(&mut self) -> Result<Ast, ParseError> {
        let mut branches = vec![self.concat()?];
        while self.peek() == Some('|') {
            self.bump();
            branches.push(self.concat()?);
        }
        Ok(if branches.len() == 1 { branches.pop().unwrap() } else { Ast::Alt(branches) })
    }

    fn concat(&mut self) -> Result<Ast, ParseError> {
        let mut seq = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            seq.push(self.repeat()?);
        }
        Ok(match seq.len() {
            0 => Ast::Empty,
            1 => seq.pop().unwrap(),
            _ => Ast::Concat(seq),
        })
    }

    fn repeat(&mut self) -> Result<Ast, ParseError> {
        let mut node = self.atom()?;
        while let Some(c) = self.peek() {
            node = match c {
                '*' => Ast::Star(Box::new(node)),
                '+' => Ast::Plus(Box::new(node)),
                '?' => Ast::Opt(Box::new(node)),
                _ => break,
            };
            self.bump();
        }
        Ok(node)
    }

    fn atom(&mut self) -> Result<Ast, ParseError> {
        match self.peek() {
            None => Err(self.err("expected an atom, found end of pattern")),
            Some('*') | Some('+') | Some('?') => Err(self.err("quantifier with nothing to repeat")),
            Some('(') => {
                self.bump();
                let inner = self.alt()?;
                if self.bump() != Some(')') {
                    return Err(self.err("unclosed group: expected ')'"));
                }
                Ok(inner)
            }
            Some('[') => self.class(),
            Some('.') => {
                self.bump();
                Ok(Ast::Any)
            }
            Some('^') => {
                self.bump();
                Ok(Ast::StartAnchor)
            }
            Some('$') => {
                self.bump();
                Ok(Ast::EndAnchor)
            }
            Some('\\') => {
                self.bump();
                self.escape()
            }
            Some(c) => {
                self.bump();
                Ok(Ast::Char(c))
            }
        }
    }

    fn escape(&mut self) -> Result<Ast, ParseError> {
        let Some(c) = self.bump() else {
            return Err(self.err("dangling backslash"));
        };
        let class = |negated: bool, ranges: Vec<(char, char)>| Ast::Class { negated, ranges };
        Ok(match c {
            'd' => class(false, vec![('0', '9')]),
            'D' => class(true, vec![('0', '9')]),
            'w' => class(false, vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
            'W' => class(true, vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
            's' => class(false, vec![(' ', ' '), ('\t', '\t'), ('\n', '\n'), ('\r', '\r')]),
            'S' => class(true, vec![(' ', ' '), ('\t', '\t'), ('\n', '\n'), ('\r', '\r')]),
            'n' => Ast::Char('\n'),
            't' => Ast::Char('\t'),
            'r' => Ast::Char('\r'),
            // Any punctuation escapes to itself: \. \* \( \[ \\ \| etc.
            c if !c.is_alphanumeric() => Ast::Char(c),
            c => return Err(self.err(&format!("unknown escape: \\{c}"))),
        })
    }

    fn class(&mut self) -> Result<Ast, ParseError> {
        debug_assert_eq!(self.peek(), Some('['));
        self.bump();
        let negated = if self.peek() == Some('^') {
            self.bump();
            true
        } else {
            false
        };
        let mut ranges: Vec<(char, char)> = Vec::new();
        let mut first = true;
        loop {
            match self.peek() {
                None => return Err(self.err("unclosed character class: expected ']'")),
                Some(']') if !first => {
                    self.bump();
                    break;
                }
                _ => {}
            }
            first = false;
            let lo = self.class_char()?;
            if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                self.bump(); // consume '-'
                let hi = self.class_char()?;
                if hi < lo {
                    return Err(self.err(&format!("invalid class range {lo}-{hi}")));
                }
                ranges.push((lo, hi));
            } else {
                ranges.push((lo, lo));
            }
        }
        if ranges.is_empty() {
            return Err(self.err("empty character class"));
        }
        Ok(Ast::Class { negated, ranges })
    }

    fn class_char(&mut self) -> Result<char, ParseError> {
        match self.bump() {
            None => Err(self.err("unclosed character class")),
            Some('\\') => match self.bump() {
                None => Err(self.err("dangling backslash in class")),
                Some('n') => Ok('\n'),
                Some('t') => Ok('\t'),
                Some('r') => Ok('\r'),
                Some(c) => Ok(c),
            },
            Some(c) => Ok(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_literal_concat() {
        assert_eq!(parse("ab").unwrap(), Ast::Concat(vec![Ast::Char('a'), Ast::Char('b')]));
    }

    #[test]
    fn precedence_alt_lowest() {
        // a|bc == a | (bc)
        let ast = parse("a|bc").unwrap();
        match ast {
            Ast::Alt(branches) => {
                assert_eq!(branches[0], Ast::Char('a'));
                assert_eq!(branches[1], Ast::Concat(vec![Ast::Char('b'), Ast::Char('c')]));
            }
            other => panic!("expected Alt, got {other:?}"),
        }
    }

    #[test]
    fn star_binds_tighter_than_concat() {
        // ab* == a(b*)
        let ast = parse("ab*").unwrap();
        assert_eq!(ast, Ast::Concat(vec![Ast::Char('a'), Ast::Star(Box::new(Ast::Char('b')))]));
    }

    #[test]
    fn class_with_ranges_and_negation() {
        let ast = parse("[^a-z0]").unwrap();
        assert_eq!(ast, Ast::Class { negated: true, ranges: vec![('a', 'z'), ('0', '0')] });
        assert!(ast.class_contains('A'));
        assert!(!ast.class_contains('m'));
        assert!(!ast.class_contains('0'));
    }

    #[test]
    fn literal_dash_at_class_end() {
        let ast = parse("[a-]").unwrap();
        assert_eq!(ast, Ast::Class { negated: false, ranges: vec![('a', 'a'), ('-', '-')] });
    }

    #[test]
    fn class_leading_bracket_is_literal() {
        let ast = parse("[]a]").unwrap();
        assert_eq!(ast, Ast::Class { negated: false, ranges: vec![(']', ']'), ('a', 'a')] });
    }

    #[test]
    fn error_positions() {
        let e = parse("ab(c").unwrap_err();
        assert!(e.message.contains("unclosed group"), "{e}");
        let e = parse("[z-a]").unwrap_err();
        assert!(e.message.contains("invalid class range"), "{e}");
        let e = parse("a)b").unwrap_err();
        assert!(e.message.contains("trailing"), "{e}");
    }

    #[test]
    fn nested_quantifiers_parse() {
        assert!(parse("(a*)+?").is_ok());
    }

    #[test]
    fn empty_pattern_is_empty_node() {
        assert_eq!(parse("").unwrap(), Ast::Empty);
        assert_eq!(parse("a|").unwrap(), Ast::Alt(vec![Ast::Char('a'), Ast::Empty]));
    }
}
