#![warn(missing_docs)]

//! # acorn-predicate
//!
//! The structured-data side of hybrid search: typed attribute storage, a
//! predicate AST covering every operator in the ACORN paper's evaluation
//! (`equals`, `contains(y1 ∨ y2 ∨ ...)`, `between(lo, hi)`, and
//! `regex-match`), boolean combinators, bitset materialization, and a
//! sampling-based selectivity estimator.
//!
//! Regex matching is served by a from-scratch Thompson-NFA engine in
//! [`regex`] (the offline-dependency policy rules out the `regex` crate; see
//! DESIGN.md §4).
//!
//! The hot-path contract consumed by the indices is the [`NodeFilter`] trait:
//! "does dataset row `id` pass this query's predicate?". Implementations
//! include lazy AST evaluation ([`PredicateFilter`]) and a precomputed
//! [`bitmap::Bitset`] ([`BitmapFilter`]), mirroring the two
//! strategies real systems (Weaviate, Milvus) use.
//!
//! The [`compiled`] module lowers the AST into a flat, constant-folded
//! [`CompiledPredicate`] program whose kernels evaluate 64-row blocks
//! against the columnar store into `u64` mask words, and [`memo`] provides
//! the per-query tri-state [`MemoTable`]/[`MemoFilter`] so graph search
//! evaluates each row at most once per query. Together they form the
//! compile → memoize → adaptive-dispatch pipeline `AcornIndex::hybrid_search`
//! serves from.

pub mod attrs;
pub mod bitmap;
pub mod compiled;
pub mod filter;
pub mod memo;
pub mod predicate;
pub mod regex;
pub mod selectivity;

pub use attrs::{AttrStore, AttrStoreBuilder, Column, FieldId};
pub use bitmap::Bitset;
pub use compiled::{CompiledFilter, CompiledPredicate, CostClass};
pub use filter::{AllPass, BitmapFilter, CountingFilter, NodeFilter, PredicateFilter};
pub use memo::{MemoFilter, MemoTable};
pub use predicate::Predicate;
pub use regex::Regex;
pub use selectivity::{
    estimate_selectivity, estimate_selectivity_compiled, estimate_selectivity_mapped,
    estimate_selectivity_seeding, estimate_selectivity_seeding_mapped, exact_selectivity,
};
